//! LFO's online features (paper §2.2).
//!
//! Four feature types per request:
//!
//! - **object size** in bytes;
//! - **most recent retrieval cost** of the object;
//! - **currently free bytes in the cache** — "useful because evictions can
//!   temporarily free up lots of space [...] If this happens, OPT and LFO
//!   are more likely to admit a new object";
//! - **time gaps between consecutive requests** to the object, up to the
//!   last 50 requests. Gaps are deltas between consecutive reference times
//!   (`t − t₁, t₁ − t₂, …`), which makes all but the first one *shift
//!   invariant* — the property the paper highlights for robustness,
//!   distinguishing LFO's features from LRU-K's absolute recencies.
//!
//! The tracker stores per-object reference times sparsely ("a large
//! fraction of CDN objects receives fewer than 5 requests", §2.2) and
//! exposes [`FeatureTracker::forget_older_than`] to bound memory on long
//! streams. For catalogs that dwarf RAM, a [`TrackerBudget`] caps the
//! number of exact gap vectors: one-hit wonders live in a compact
//! doorkeeper sketch (a seeded, direct-mapped array of last-seen times)
//! and are promoted to an exact history only on their second sighting;
//! promotion beyond the budget evicts via a CLOCK ring, never a full scan
//! (DESIGN.md §14).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cdn_trace::{CostModel, ObjectId, Request};
use serde::{Deserialize, Serialize};

use crate::sketchpool::SharedDoorkeeper;

/// Default number of gaps tracked (the paper's 50).
pub const FEATURE_GAPS: usize = 50;

/// Sentinel value for "no such past request" gap slots. Chosen large so
/// that quantile binning puts all missing gaps into the top bin.
pub const MISSING_GAP: f32 = 1.0e12;

/// Sketch slot sentinel: no object hashing here has been seen.
const EMPTY_SLOT: u32 = u32::MAX;

/// Saturation ceiling for CLOCK reference counters: a hot object survives
/// at most this many hand sweeps without a fresh sighting.
const CLOCK_MAX_COUNT: u8 = 3;

/// The repo's standard 64-bit mixer (same constants as `lfo::shard`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Memory budget for a [`FeatureTracker`] (DESIGN.md §14).
///
/// `max_objects == 0` (the default) disables bounding: the tracker keeps
/// an exact gap vector for every object ever seen. With a finite budget
/// the tracker holds at most `max_objects` exact histories; everything
/// else lives in the doorkeeper sketch, whose single timestamp per slot
/// yields a coarse `gap_1` (deeper gaps read as missing). An object is
/// promoted to an exact history only on its second sighting, filtering
/// the one-hit wonders that dominate CDN catalogs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackerBudget {
    /// Maximum objects with exact gap history (0 = unbounded).
    pub max_objects: usize,
    /// log2 of the doorkeeper sketch slot count. 0 = auto: the smallest
    /// power of two with at least `4 × max_objects` slots.
    pub sketch_bits: u32,
    /// Seed for the sketch's slot hash.
    pub seed: u64,
}

impl Default for TrackerBudget {
    fn default() -> Self {
        TrackerBudget {
            max_objects: 0,
            sketch_bits: 0,
            seed: 0x1fe0_cdca_c4e5_eed5,
        }
    }
}

impl TrackerBudget {
    /// A bounded budget of `max_objects` with an auto-sized sketch.
    pub fn capped(max_objects: usize) -> Self {
        TrackerBudget {
            max_objects,
            ..TrackerBudget::default()
        }
    }

    /// Whether this budget actually bounds the tracker.
    pub fn is_bounded(&self) -> bool {
        self.max_objects > 0
    }

    /// Number of sketch slots (always a power of two; 0 when unbounded).
    pub(crate) fn slots(&self) -> usize {
        if !self.is_bounded() {
            return 0;
        }
        if self.sketch_bits > 0 {
            1usize << self.sketch_bits.min(30)
        } else {
            (4 * self.max_objects).next_power_of_two()
        }
    }
}

/// A bounded, serializable snapshot of tracker history.
///
/// The LFO model is only half of the learned state — its gap features come
/// from per-object request history, and a model scoring a history-less
/// tracker sees the missing-gap sentinel everywhere (every object looks
/// first-seen, so the admission filter bypasses the entire working set).
/// Persisting a snapshot of the hottest objects alongside the model lets a
/// restarted pipeline serve meaningful predictions from its first request.
///
/// The format is budget-agnostic: a snapshot taken from an exact tracker
/// loads into a bounded one (entries beyond the budget are CLOCK-evicted
/// on promotion) and vice versa, which is what keeps pre-budget artifacts
/// warm-starting bounded caches.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrackerSnapshot {
    /// `(object id, reference times most recent first)`, ordered most
    /// recently touched first, truncated to the snapshot bound.
    pub entries: Vec<(u64, Vec<u64>)>,
}

impl TrackerSnapshot {
    /// Number of objects captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot captured nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Exact per-object state: reference times plus the CLOCK slot owning
/// this object (unused — always 0 — when the tracker is unbounded).
#[derive(Clone, Debug)]
struct ObjectHistory {
    /// Reference times, most recent first, at most `depth + 1` entries.
    times: VecDeque<u64>,
    /// Index into the CLOCK ring.
    slot: usize,
}

/// The CLOCK ring over promoted objects, stored as parallel vectors (nine
/// bytes per slot instead of sixteen — padding a counter byte into a
/// struct of `u64`s would double its cost at typical budgets).
///
/// Counters are saturating references (GCLOCK). A plain 1-bit CLOCK
/// forgets how hot an object is the moment the hand clears its bit; under
/// a flood of tail-object promotions the hand laps the ring fast, and
/// mid-popularity histories get recycled between their sightings. The
/// counter gives an object one extra lap of protection per sighting, up
/// to [`CLOCK_MAX_COUNT`].
#[derive(Clone, Debug, Default)]
struct ClockRing {
    /// The object parked in each slot.
    objects: Vec<ObjectId>,
    /// Each slot's saturating reference counter.
    counts: Vec<u8>,
}

impl ClockRing {
    fn len(&self) -> usize {
        self.objects.len()
    }

    fn push(&mut self, object: ObjectId) {
        self.objects.push(object);
        self.counts.push(0);
    }

    fn park(&mut self, slot: usize, object: ObjectId) {
        self.objects[slot] = object;
        self.counts[slot] = 0;
    }

    fn reference(&mut self, slot: usize) {
        self.counts[slot] = self.counts[slot].saturating_add(1).min(CLOCK_MAX_COUNT);
    }

    fn approximate_bytes(&self) -> usize {
        self.objects.len() * (std::mem::size_of::<ObjectId>() + 1)
    }
}

/// A tracker's attachment to a fleet-shared doorkeeper pool: the pool
/// plus the ring stripe this tracker owns (DESIGN.md §16). When present,
/// the tracker's own `sketch`/`clock`/`hand` stay empty — sketch slots
/// and ring sweeps go through the pool instead.
#[derive(Clone, Debug)]
struct SharedStripe {
    pool: Arc<SharedDoorkeeper>,
    stripe: usize,
}

/// Tracks per-object request history and produces feature vectors.
#[derive(Clone, Debug)]
pub struct FeatureTracker {
    /// 1-based gap indices emitted as features, ascending. The dense
    /// default is `1..=n`; Figure 8's discussion suggests thinning to
    /// powers of two ("only using time gaps 1, 2, 4, 8, 16, etc.") to
    /// shrink the model without losing the long-range signal.
    schedule: Vec<usize>,
    /// Deepest gap tracked (`max(schedule)`).
    depth: usize,
    cost_model: CostModel,
    /// Exact histories. Bounded to `budget.max_objects` when the budget
    /// is finite.
    history: HashMap<ObjectId, ObjectHistory>,
    budget: TrackerBudget,
    /// Doorkeeper sketch: direct-mapped last-seen times (saturated to
    /// `u32`, so four bytes per slot), [`EMPTY_SLOT`] where no object has
    /// hashed yet. Empty when unbounded.
    sketch: Vec<u32>,
    /// CLOCK ring over promoted objects. Empty when unbounded.
    clock: ClockRing,
    /// CLOCK hand: next ring slot the eviction sweep examines.
    hand: usize,
    /// Fleet-shared doorkeeper attachment (`None` = single-owner state).
    shared: Option<SharedStripe>,
}

impl FeatureTracker {
    /// Creates an unbounded tracker for the dense schedule `1..=num_gaps`.
    pub fn new(num_gaps: usize, cost_model: CostModel) -> Self {
        Self::with_schedule((1..=num_gaps).collect(), cost_model)
    }

    /// Creates an unbounded tracker emitting only the given 1-based gap
    /// indices.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty, unsorted, non-unique, or contains 0.
    pub fn with_schedule(schedule: Vec<usize>, cost_model: CostModel) -> Self {
        Self::with_budget(schedule, cost_model, TrackerBudget::default())
    }

    /// Creates a tracker with an explicit [`TrackerBudget`].
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty, unsorted, non-unique, or contains 0.
    pub fn with_budget(schedule: Vec<usize>, cost_model: CostModel, budget: TrackerBudget) -> Self {
        assert!(!schedule.is_empty(), "schedule must be non-empty");
        assert!(
            schedule.windows(2).all(|w| w[0] < w[1]) && schedule[0] >= 1,
            "schedule must be ascending, unique, 1-based"
        );
        let depth = *schedule.last().expect("non-empty");
        FeatureTracker {
            schedule,
            depth,
            cost_model,
            history: HashMap::new(),
            budget,
            sketch: vec![EMPTY_SLOT; budget.slots()],
            clock: ClockRing::default(),
            hand: 0,
            shared: None,
        }
    }

    /// Creates a tracker borrowing a fleet-shared doorkeeper: sketch
    /// slots and GCLOCK recycling go through `pool` (on ring stripe
    /// `stripe`), and only the exact histories stay shard-local. The
    /// budget is the *pool's* budget — fleet-wide, not per-shard.
    ///
    /// An `Arc` cannot live inside the `Copy + Serialize`
    /// [`TrackerBudget`], so the shared variant is a runtime attachment
    /// (this constructor / [`crate::LfoCache::join_sketch_pool`]) rather
    /// than a budget field, mirroring how caches join a
    /// [`crate::policy::SharedOccupancy`] pool.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is invalid (as [`Self::with_budget`]) or
    /// `stripe` is out of range for the pool.
    pub fn with_shared_pool(
        schedule: Vec<usize>,
        cost_model: CostModel,
        pool: Arc<SharedDoorkeeper>,
        stripe: usize,
    ) -> Self {
        assert!(stripe < pool.stripes(), "stripe out of range");
        let budget = pool.budget();
        let mut tracker = Self::with_budget(schedule, cost_model, budget);
        // The fleet sketch lives in the pool — drop the private copy the
        // plain constructor sized for the budget.
        tracker.sketch = Vec::new();
        tracker.shared = Some(SharedStripe { pool, stripe });
        tracker
    }

    /// The fleet-shared doorkeeper this tracker borrows, if any.
    pub fn shared_pool(&self) -> Option<&Arc<SharedDoorkeeper>> {
        self.shared.as_ref().map(|s| &s.pool)
    }

    /// Whether `object` currently has an exact (promoted) gap history —
    /// i.e. it has passed the doorkeeper. Unbounded trackers promote on
    /// first sighting, so this is simply "seen before" there.
    pub fn is_tracked(&self, object: ObjectId) -> bool {
        self.history.contains_key(&object)
    }

    /// Number of gap features produced.
    pub fn num_gaps(&self) -> usize {
        self.schedule.len()
    }

    /// The gap indices emitted as features.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// The memory budget this tracker was built with.
    pub fn budget(&self) -> TrackerBudget {
        self.budget
    }

    /// Number of objects with an exact gap history.
    pub fn tracked_objects(&self) -> usize {
        self.history.len()
    }

    /// Bytes held by the doorkeeper sketch (0 when unbounded).
    pub fn sketch_bytes(&self) -> usize {
        self.sketch.len() * 4
    }

    /// Saturates a request time into a sketch slot. Traces past `u32::MAX`
    /// requests pin to the ceiling: coarse gaps flatten there, exact
    /// histories (always full `u64`) are unaffected.
    fn sketch_time(time: u64) -> u32 {
        time.min(u64::from(u32::MAX - 1)) as u32
    }

    /// The sketch slot for `object` (bounded trackers only).
    fn bucket(&self, object: ObjectId) -> usize {
        debug_assert!(!self.sketch.is_empty());
        (splitmix64(self.budget.seed ^ object.0) as usize) & (self.sketch.len() - 1)
    }

    /// Builds the feature vector for `request` *before* recording it, with
    /// `free_bytes` as the current free-cache-space feature.
    ///
    /// Layout: `[size, cost, free, gap_1, ..., gap_n]`, matching
    /// [`crate::LfoConfig::feature_names`].
    pub fn features(&self, request: &Request, free_bytes: u64) -> Vec<f32> {
        let mut out = Vec::with_capacity(3 + self.schedule.len());
        self.features_into(request, free_bytes, &mut out);
        out
    }

    /// Like [`Self::features`], but writes into `out` (cleared first)
    /// instead of allocating — the serving hot path reuses one scratch
    /// buffer per cache instead of heap-allocating per request.
    pub fn features_into(&self, request: &Request, free_bytes: u64, out: &mut Vec<f32>) {
        out.clear();
        out.push(request.size as f32);
        out.push(self.cost_model.cost(request.size) as f32);
        out.push(free_bytes as f32);
        match self.history.get(&request.object) {
            Some(h) => {
                // gap_1 = now − t₁; gap_k = t_{k−1} − t_k (shift invariant).
                // Walk the dense gaps to the tracked depth, emitting only
                // the scheduled indices as they pass by.
                let mut prev = request.time;
                let mut next = 0usize; // index into the ascending schedule
                for k in 0..self.depth {
                    let gap = match h.times.get(k) {
                        Some(&t) => {
                            let g = prev.saturating_sub(t) as f32;
                            prev = t;
                            g
                        }
                        None => MISSING_GAP,
                    };
                    if self.schedule[next] == k + 1 {
                        out.push(gap);
                        next += 1;
                        if next == self.schedule.len() {
                            break;
                        }
                    }
                }
            }
            None => {
                // Unbounded trackers have never seen this object. Bounded
                // trackers may hold a first sighting in the sketch: emit a
                // coarse gap_1 (subject to slot collisions) so one-hit
                // wonders still look "recently seen once" to the model
                // rather than brand new.
                let slot = match &self.shared {
                    Some(s) => Some(s.pool.load_slot(s.pool.bucket(request.object))),
                    None if self.sketch.is_empty() => None,
                    None => Some(self.sketch[self.bucket(request.object)]),
                };
                let coarse = slot.and_then(|t| {
                    (t != EMPTY_SLOT).then(|| request.time.saturating_sub(u64::from(t)) as f32)
                });
                match coarse {
                    Some(gap) if self.schedule[0] == 1 => {
                        out.push(gap);
                        out.extend(std::iter::repeat_n(MISSING_GAP, self.schedule.len() - 1));
                    }
                    _ => out.extend(std::iter::repeat_n(MISSING_GAP, self.schedule.len())),
                }
            }
        }
    }

    /// Records a request into the history (call after [`Self::features`]).
    pub fn record(&mut self, request: &Request) {
        if let Some(shared) = self.shared.clone() {
            self.record_shared(&shared, request);
            return;
        }
        if !self.budget.is_bounded() {
            let entry = self
                .history
                .entry(request.object)
                .or_insert_with(|| ObjectHistory {
                    times: VecDeque::new(),
                    slot: 0,
                });
            entry.times.push_front(request.time);
            entry.times.truncate(self.depth + 1);
            return;
        }
        if let Some(h) = self.history.get_mut(&request.object) {
            h.times.push_front(request.time);
            h.times.truncate(self.depth + 1);
            let slot = h.slot;
            self.clock.reference(slot);
            let b = self.bucket(request.object);
            self.sketch[b] = Self::sketch_time(request.time);
            return;
        }
        let b = self.bucket(request.object);
        let prior = self.sketch[b];
        self.sketch[b] = Self::sketch_time(request.time);
        if prior == EMPTY_SLOT {
            // Doorkeeper: a first sighting costs one sketch slot, nothing
            // more. One-hit wonders never allocate a history.
            return;
        }
        // Second sighting (or a slot collision promoting early): seed the
        // exact history with the sketched prior time so the next feature
        // row's gap_1/gap_2 match what an exact tracker would emit.
        let prior = u64::from(prior);
        let mut times = VecDeque::with_capacity(2);
        times.push_front(prior.min(request.time));
        if prior < request.time {
            times.push_front(request.time);
        }
        self.promote(request.object, times);
    }

    /// The shared-pool mirror of the bounded [`Self::record`] branch:
    /// same doorkeeper protocol, but sketch slots advance by CAS in the
    /// fleet pool (so a racing shard's later time is kept, never
    /// regressed) and promotions recycle through this tracker's ring
    /// stripe instead of a private CLOCK.
    fn record_shared(&mut self, shared: &SharedStripe, request: &Request) {
        let b = shared.pool.bucket(request.object);
        if let Some(h) = self.history.get_mut(&request.object) {
            h.times.push_front(request.time);
            h.times.truncate(self.depth + 1);
            shared.pool.reference(h.slot);
            shared.pool.update_slot(b, request.time);
            return;
        }
        let prior = shared.pool.update_slot(b, request.time);
        if prior == EMPTY_SLOT {
            // Doorkeeper: a first sighting (fleet-wide) costs one shared
            // sketch slot, nothing more.
            return;
        }
        // Second sighting — possibly observed by *another* shard first,
        // so the sketched prior may be at or past this request's time;
        // `min`/`<` keep the seeded history monotonic either way.
        let prior = u64::from(prior);
        let mut times = VecDeque::with_capacity(2);
        times.push_front(prior.min(request.time));
        if prior < request.time {
            times.push_front(request.time);
        }
        self.promote_shared(shared, request.object, times);
    }

    /// Parks `object` in this tracker's pool stripe, forgetting whichever
    /// live owner the stripe's GCLOCK sweep recycled. The staleness check
    /// the private `clock_evict` does inline is handed to the pool as a
    /// closure over this tracker's history map.
    fn promote_shared(&mut self, shared: &SharedStripe, object: ObjectId, times: VecDeque<u64>) {
        let history = &self.history;
        let outcome = shared
            .pool
            .stripe_promote(shared.stripe, object, |owner, slot| {
                history.get(&owner).is_some_and(|h| h.slot == slot)
            });
        if let Some(victim) = outcome.evicted {
            self.history.remove(&victim);
        }
        self.history.insert(
            object,
            ObjectHistory {
                times,
                slot: outcome.slot,
            },
        );
    }

    /// Inserts an exact history for `object`, reclaiming a CLOCK slot when
    /// the budget is full. Bounded trackers only. The new slot starts with
    /// its counter at zero — promotion itself is not a reference, so an
    /// object idle since its promoting sighting loses the ring to one that
    /// kept getting hits.
    fn promote(&mut self, object: ObjectId, times: VecDeque<u64>) {
        let slot = if self.clock.len() < self.budget.max_objects {
            self.clock.push(object);
            self.clock.len() - 1
        } else {
            let s = self.clock_evict();
            self.clock.park(s, object);
            s
        };
        self.history.insert(object, ObjectHistory { times, slot });
    }

    /// Advances the CLOCK hand to the next reclaimable slot: stale slots
    /// (owner forgotten or re-promoted elsewhere) are taken immediately,
    /// owners with a nonzero counter get it decremented and another lap,
    /// and the first zero-count owner is evicted. Amortized O(1); at most
    /// `CLOCK_MAX_COUNT + 1` laps even when every resident is saturated.
    fn clock_evict(&mut self) -> usize {
        loop {
            if self.hand >= self.clock.len() {
                self.hand = 0;
            }
            let s = self.hand;
            self.hand += 1;
            let owner = self.clock.objects[s];
            match self.history.get(&owner) {
                Some(h) if h.slot == s => {
                    if self.clock.counts[s] > 0 {
                        self.clock.counts[s] -= 1;
                    } else {
                        self.history.remove(&owner);
                        return s;
                    }
                }
                _ => return s,
            }
        }
    }

    /// Convenience: features, then record.
    pub fn observe(&mut self, request: &Request, free_bytes: u64) -> Vec<f32> {
        let f = self.features(request, free_bytes);
        self.record(request);
        f
    }

    /// Snapshots the histories of the `limit` most recently touched
    /// objects (ties broken by object id, so snapshots are deterministic).
    pub fn snapshot(&self, limit: usize) -> TrackerSnapshot {
        let mut order: Vec<(u64, u64)> = self
            .history
            .iter()
            .map(|(object, h)| (object.0, h.times.front().copied().unwrap_or(0)))
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let entries = order
            .into_iter()
            .take(limit)
            .filter_map(|(id, _)| {
                self.history
                    .get(&ObjectId(id))
                    .map(|h| (id, h.times.iter().copied().collect()))
            })
            .collect();
        TrackerSnapshot { entries }
    }

    /// Loads snapshot history into this tracker. Snapshot entries replace
    /// any same-object history; other state is kept. Histories deeper than
    /// this tracker's schedule are truncated, and a bounded tracker
    /// promotes entries in snapshot order (most recently touched first),
    /// CLOCK-evicting once the budget fills — so an exact snapshot from a
    /// pre-budget artifact warm-starts a bounded tracker with its hottest
    /// objects.
    pub fn load_snapshot(&mut self, snapshot: &TrackerSnapshot) {
        if let Some(shared) = self.shared.clone() {
            for (id, times) in &snapshot.entries {
                let object = ObjectId(*id);
                let mut deque: VecDeque<u64> = times.iter().copied().collect();
                deque.truncate(self.depth + 1);
                if let Some(&latest) = deque.front() {
                    shared.pool.update_slot(shared.pool.bucket(object), latest);
                }
                if let Some(h) = self.history.get_mut(&object) {
                    h.times = deque;
                    shared.pool.reference(h.slot);
                } else if shared.pool.stripe_has_room(shared.stripe) {
                    self.promote_shared(&shared, object, deque);
                }
                // else: stripe full — hottest-first ordering means the
                // remainder are the coldest and stay sketched.
            }
            return;
        }
        for (id, times) in &snapshot.entries {
            let object = ObjectId(*id);
            let mut deque: VecDeque<u64> = times.iter().copied().collect();
            deque.truncate(self.depth + 1);
            if !self.budget.is_bounded() {
                self.history.insert(
                    object,
                    ObjectHistory {
                        times: deque,
                        slot: 0,
                    },
                );
                continue;
            }
            if let Some(&latest) = deque.front() {
                let b = self.bucket(object);
                self.sketch[b] = Self::sketch_time(latest);
            }
            if let Some(h) = self.history.get_mut(&object) {
                h.times = deque;
                let slot = h.slot;
                self.clock.reference(slot);
            } else if self.history.len() < self.budget.max_objects {
                self.promote(object, deque);
            }
            // else: budget full — snapshot entries arrive hottest-first,
            // so the remainder are the coldest and stay sketched.
        }
    }

    /// Drops history for objects not touched since `time`, bounding memory
    /// on unbounded streams. Sketch slots older than `time` are wiped too,
    /// so forgotten one-hit wonders look brand new again. On a shared
    /// pool the sketch wipe is fleet-wide (the sketch is fleet state);
    /// exact histories are only dropped locally.
    pub fn forget_older_than(&mut self, time: u64) {
        self.history
            .retain(|_, h| h.times.front().copied().unwrap_or(0) >= time);
        if let Some(shared) = &self.shared {
            shared.pool.forget_older_than(time);
            return;
        }
        for slot in &mut self.sketch {
            if *slot != EMPTY_SLOT && u64::from(*slot) < time {
                *slot = EMPTY_SLOT;
            }
        }
    }

    /// Approximate bytes of tracker state (the paper estimates 208 bytes
    /// per object for a naive dense representation; the sparse tracker
    /// only pays for requests actually seen). Covers the exact histories,
    /// the CLOCK ring, and the doorkeeper sketch.
    pub fn approximate_bytes(&self) -> usize {
        let histories = self
            .history
            .values()
            .map(|h| 8 * h.times.len() + 56)
            .sum::<usize>();
        match &self.shared {
            // Shared mode: this tracker pays for its histories and its
            // ring stripe's share; the fleet sketch is counted once at
            // the pool ([`SharedDoorkeeper::sketch_bytes`]), not here.
            Some(s) => histories + s.pool.stripe_ring_bytes(s.stripe),
            None => histories + self.clock.approximate_bytes() + self.sketch_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> FeatureTracker {
        FeatureTracker::new(4, CostModel::ByteHitRatio)
    }

    fn bounded(max_objects: usize) -> FeatureTracker {
        FeatureTracker::with_budget(
            (1..=4).collect(),
            CostModel::ByteHitRatio,
            TrackerBudget::capped(max_objects),
        )
    }

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    #[test]
    fn layout_and_basic_values() {
        let mut tr = tracker();
        let f = tr.observe(&req(100, 1, 512), 4096);
        assert_eq!(f.len(), 3 + 4);
        assert_eq!(f[0], 512.0); // size
        assert_eq!(f[1], 512.0); // cost = size under BHR
        assert_eq!(f[2], 4096.0); // free bytes
        assert!(f[3..].iter().all(|&g| g == MISSING_GAP));
    }

    #[test]
    fn gaps_are_consecutive_deltas() {
        let mut tr = tracker();
        tr.record(&req(10, 1, 100));
        tr.record(&req(25, 1, 100));
        tr.record(&req(31, 1, 100));
        let f = tr.features(&req(40, 1, 100), 0);
        // gap1 = 40-31, gap2 = 31-25, gap3 = 25-10, gap4 missing.
        assert_eq!(f[3], 9.0);
        assert_eq!(f[4], 6.0);
        assert_eq!(f[5], 15.0);
        assert_eq!(f[6], MISSING_GAP);
    }

    #[test]
    fn shift_invariance_of_deep_gaps() {
        // Shifting all times by a constant leaves gaps 2..n unchanged and
        // gap 1 unchanged too when the query time shifts equally.
        let mut a = tracker();
        let mut b = tracker();
        for &t in &[5u64, 9, 20] {
            a.record(&req(t, 1, 10));
            b.record(&req(t + 1000, 1, 10));
        }
        let fa = a.features(&req(30, 1, 10), 7);
        let fb = b.features(&req(1030, 1, 10), 7);
        assert_eq!(fa, fb);
    }

    #[test]
    fn history_is_bounded_per_object() {
        let mut tr = tracker();
        for t in 0..100 {
            tr.record(&req(t, 1, 10));
        }
        assert!(tr.history[&ObjectId(1)].times.len() <= 5);
    }

    #[test]
    fn cost_model_drives_cost_feature() {
        let mut tr = FeatureTracker::new(2, CostModel::ObjectHitRatio);
        let f = tr.observe(&req(0, 1, 9999), 0);
        assert_eq!(f[1], 1.0);
    }

    #[test]
    fn forgetting_drops_cold_objects() {
        let mut tr = tracker();
        tr.record(&req(10, 1, 10));
        tr.record(&req(500, 2, 10));
        tr.forget_older_than(100);
        assert_eq!(tr.tracked_objects(), 1);
        // Forgotten object looks brand new again.
        let f = tr.features(&req(600, 1, 10), 0);
        assert_eq!(f[3], MISSING_GAP);
    }

    #[test]
    fn observe_equals_features_then_record() {
        let mut a = tracker();
        let mut b = tracker();
        let r1 = req(5, 1, 10);
        let r2 = req(9, 1, 10);
        let fa1 = a.observe(&r1, 3);
        let fa2 = a.observe(&r2, 3);
        let fb1 = b.features(&r1, 3);
        b.record(&r1);
        let fb2 = b.features(&r2, 3);
        b.record(&r2);
        assert_eq!(fa1, fb1);
        assert_eq!(fa2, fb2);
    }

    #[test]
    fn thinned_schedule_emits_selected_gaps_only() {
        let mut tr = FeatureTracker::with_schedule(vec![1, 2, 4], CostModel::ByteHitRatio);
        for &t in &[10u64, 20, 26, 29, 31] {
            tr.record(&req(t, 1, 10));
        }
        let f = tr.features(&req(40, 1, 10), 0);
        assert_eq!(f.len(), 3 + 3);
        // Dense gaps would be [9, 2, 3, 6, 10]; schedule picks 1, 2, 4.
        assert_eq!(f[3], 9.0);
        assert_eq!(f[4], 2.0);
        assert_eq!(f[5], 6.0);
    }

    #[test]
    fn thinned_schedule_tracks_deep_history() {
        let mut tr = FeatureTracker::with_schedule(vec![1, 8], CostModel::ByteHitRatio);
        for t in 0..20u64 {
            tr.record(&req(t, 1, 10));
        }
        // Depth 8 means 9 retained reference times.
        assert_eq!(tr.history[&ObjectId(1)].times.len(), 9);
        let f = tr.features(&req(100, 1, 10), 0);
        assert_eq!(f[3], 81.0); // 100 - 19
        assert_eq!(f[4], 1.0); // consecutive unit gaps deep in history
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_schedule_rejected() {
        FeatureTracker::with_schedule(vec![2, 1], CostModel::ByteHitRatio);
    }

    #[test]
    fn features_into_matches_features_and_reuses_the_buffer() {
        let mut dense = FeatureTracker::new(6, CostModel::ByteHitRatio);
        let mut thinned = FeatureTracker::with_schedule(vec![1, 3, 6], CostModel::ByteHitRatio);
        let mut scratch = Vec::new();
        for t in 0..40u64 {
            let r = req(t * 3, t % 5, 10 + t);
            for tr in [&mut dense, &mut thinned] {
                let allocated = tr.features(&r, 17);
                tr.features_into(&r, 17, &mut scratch);
                assert_eq!(allocated, scratch);
            }
            dense.record(&r);
            thinned.record(&r);
        }
        // The scratch buffer's capacity stabilizes — no per-call growth.
        let cap = scratch.capacity();
        let r = req(1000, 1, 10);
        dense.features_into(&r, 0, &mut scratch);
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn memory_estimate_grows_with_objects() {
        let mut tr = tracker();
        let before = tr.approximate_bytes();
        for i in 0..100 {
            tr.record(&req(i, i, 10));
        }
        assert!(tr.approximate_bytes() > before);
    }

    #[test]
    fn snapshot_roundtrip_restores_identical_features() {
        let mut tr = tracker();
        for t in 0..200u64 {
            tr.record(&req(t * 7, t % 13, 10 + t));
        }
        let snapshot = tr.snapshot(usize::MAX);
        let mut restored = tracker();
        restored.load_snapshot(&snapshot);
        for id in 0..13u64 {
            let probe = req(5_000, id, 64);
            assert_eq!(tr.features(&probe, 100), restored.features(&probe, 100));
        }
    }

    #[test]
    fn snapshot_bounds_to_most_recently_touched() {
        let mut tr = tracker();
        for t in 0..50u64 {
            tr.record(&req(t, t, 10)); // object id == touch time
        }
        let snapshot = tr.snapshot(5);
        assert_eq!(snapshot.len(), 5);
        // Most recently touched first: objects 49 down to 45.
        let ids: Vec<u64> = snapshot.entries.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![49, 48, 47, 46, 45]);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut tr = tracker();
        for t in 0..30u64 {
            tr.record(&req(t * 11, t % 4, 10));
        }
        let snapshot = tr.snapshot(usize::MAX);
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: TrackerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snapshot, back);
    }

    #[test]
    fn deep_snapshot_truncates_to_schedule_depth() {
        let mut deep = FeatureTracker::new(8, CostModel::ByteHitRatio);
        for t in 0..20u64 {
            deep.record(&req(t, 1, 10));
        }
        let mut shallow = tracker(); // depth 4
        shallow.load_snapshot(&deep.snapshot(usize::MAX));
        let probe = req(100, 1, 10);
        let f = shallow.features(&probe, 0);
        assert_eq!(f.len(), 3 + 4);
        assert!(f[3..].iter().all(|&g| g != MISSING_GAP));
    }

    // ---- bounded tracker (TrackerBudget, DESIGN.md §14) ----

    #[test]
    fn doorkeeper_defers_one_hit_wonders() {
        // Sketch sized so the 100 ids land in distinct buckets — a slot
        // collision deliberately promotes early, which is not under test
        // here (unbounded_budget_matches_exact_tracker_bit_for_bit covers
        // the collision-free contract at scale).
        let budget = TrackerBudget {
            max_objects: 8,
            sketch_bits: 18,
            ..TrackerBudget::default()
        };
        let mut tr =
            FeatureTracker::with_budget((1..=4).collect(), CostModel::ByteHitRatio, budget);
        for id in 0..100u64 {
            tr.record(&req(id, id, 10));
        }
        // Every object was seen exactly once: no exact history at all,
        // only sketch slots.
        assert_eq!(tr.tracked_objects(), 0);
        assert!(tr.sketch_bytes() > 0);
    }

    #[test]
    fn second_sighting_promotes_with_exact_seed_gaps() {
        let mut exact = tracker();
        let mut b = bounded(8);
        for tr in [&mut exact, &mut b] {
            tr.record(&req(10, 7, 10));
            tr.record(&req(25, 7, 10));
        }
        assert_eq!(b.tracked_objects(), 1);
        // Third row: gap_1 = 40-25, gap_2 = 25-10 — identical to exact.
        let probe = req(40, 7, 10);
        assert_eq!(b.features(&probe, 0), exact.features(&probe, 0));
    }

    #[test]
    fn sketched_object_reports_a_coarse_first_gap() {
        let mut tr = bounded(8);
        tr.record(&req(100, 3, 10));
        let f = tr.features(&req(130, 3, 10), 0);
        assert_eq!(f[3], 30.0); // coarse gap from the sketch slot
        assert!(f[4..].iter().all(|&g| g == MISSING_GAP));
    }

    #[test]
    fn clock_eviction_caps_tracked_objects() {
        let mut tr = bounded(4);
        // Promote 12 objects (two sightings each); the ring holds 4.
        for id in 0..12u64 {
            tr.record(&req(id * 10, id, 10));
            tr.record(&req(id * 10 + 5, id, 10));
        }
        assert_eq!(tr.tracked_objects(), 4);
    }

    #[test]
    fn clock_keeps_referenced_objects_over_idle_ones() {
        let mut tr = bounded(2);
        // Promote objects 1 and 2, then keep touching 1 only.
        for &(t, id) in &[(0u64, 1u64), (1, 2), (2, 1), (3, 2), (4, 1), (5, 1)] {
            tr.record(&req(t, id, 10));
        }
        // Promote a third object: the idle 2 must go, the hot 1 survives.
        tr.record(&req(6, 3, 10));
        tr.record(&req(7, 3, 10));
        assert_eq!(tr.tracked_objects(), 2);
        let f1 = tr.features(&req(10, 1, 10), 0);
        assert!(f1[4] != MISSING_GAP, "hot object lost its exact history");
    }

    #[test]
    fn unbounded_budget_matches_exact_tracker_bit_for_bit() {
        let mut exact = tracker();
        let mut b = FeatureTracker::with_budget(
            (1..=4).collect(),
            CostModel::ByteHitRatio,
            TrackerBudget::default(),
        );
        for t in 0..300u64 {
            let r = req(t * 3, splitmix64(t) % 40, 10 + t % 7);
            assert_eq!(exact.features(&r, 99), b.features(&r, 99));
            exact.record(&r);
            b.record(&r);
        }
    }

    #[test]
    fn forget_wipes_sketch_slots() {
        let mut tr = bounded(8);
        tr.record(&req(10, 1, 10));
        tr.forget_older_than(50);
        let f = tr.features(&req(60, 1, 10), 0);
        assert_eq!(f[3], MISSING_GAP, "stale sketch slot survived forget");
    }

    #[test]
    fn exact_snapshot_warm_starts_a_bounded_tracker() {
        let mut exact = tracker();
        for t in 0..200u64 {
            exact.record(&req(t, t % 20, 10));
        }
        let snapshot = exact.snapshot(usize::MAX);
        let mut b = bounded(6);
        b.load_snapshot(&snapshot);
        assert_eq!(b.tracked_objects(), 6);
        // The budgeted tracker kept the most recently touched entries
        // (snapshot order), and serves their exact gaps.
        let probe = req(500, 19, 10);
        assert_eq!(b.features(&probe, 0), exact.features(&probe, 0));
    }

    // ---- fleet-shared doorkeeper (SharedDoorkeeper, DESIGN.md §16) ----

    #[test]
    fn one_stripe_shared_pool_matches_the_private_bounded_tracker() {
        let budget = TrackerBudget::capped(8);
        let pool = Arc::new(SharedDoorkeeper::new(budget, 1));
        let mut private =
            FeatureTracker::with_budget((1..=4).collect(), CostModel::ByteHitRatio, budget);
        let mut shared =
            FeatureTracker::with_shared_pool((1..=4).collect(), CostModel::ByteHitRatio, pool, 0);
        for t in 0..500u64 {
            let r = req(t * 3, splitmix64(t) % 60, 10 + t % 7);
            assert_eq!(private.features(&r, 42), shared.features(&r, 42));
            private.record(&r);
            shared.record(&r);
        }
        assert_eq!(private.tracked_objects(), shared.tracked_objects());
    }

    #[test]
    fn shards_share_first_sighting_evidence_through_the_pool() {
        let pool = Arc::new(SharedDoorkeeper::new(TrackerBudget::capped(8), 2));
        let mut a = FeatureTracker::with_shared_pool(
            (1..=4).collect(),
            CostModel::ByteHitRatio,
            pool.clone(),
            0,
        );
        let mut b =
            FeatureTracker::with_shared_pool((1..=4).collect(), CostModel::ByteHitRatio, pool, 1);
        // Shard A sees the first sighting, shard B the second: with a
        // fleet sketch the second sighting promotes on B (per-shard
        // sketches would treat it as another one-hit wonder).
        a.record(&req(10, 7, 64));
        assert!(!a.is_tracked(ObjectId(7)));
        b.record(&req(25, 7, 64));
        assert!(b.is_tracked(ObjectId(7)));
        let f = b.features(&req(40, 7, 64), 0);
        assert_eq!(f[3], 15.0); // gap_1 = 40 - 25
        assert_eq!(f[4], 15.0); // gap_2 = 25 - 10, seeded from A's sketch write
    }

    #[test]
    fn shared_tracker_counts_its_stripe_share_not_the_fleet_sketch() {
        let pool = Arc::new(SharedDoorkeeper::new(TrackerBudget::capped(10), 2));
        let tr = FeatureTracker::with_shared_pool(
            (1..=4).collect(),
            CostModel::ByteHitRatio,
            pool.clone(),
            0,
        );
        assert_eq!(tr.sketch_bytes(), 0);
        assert_eq!(tr.approximate_bytes(), pool.stripe_ring_bytes(0));
        assert!(pool.sketch_bytes() > 0);
    }

    #[test]
    fn shared_snapshot_promotes_while_the_stripe_has_room() {
        let mut exact = tracker();
        for t in 0..200u64 {
            exact.record(&req(t, t % 20, 10));
        }
        let snapshot = exact.snapshot(usize::MAX);
        let pool = Arc::new(SharedDoorkeeper::new(TrackerBudget::capped(6), 1));
        let mut shared =
            FeatureTracker::with_shared_pool((1..=4).collect(), CostModel::ByteHitRatio, pool, 0);
        shared.load_snapshot(&snapshot);
        assert_eq!(shared.tracked_objects(), 6);
        let probe = req(500, 19, 10);
        assert_eq!(shared.features(&probe, 0), exact.features(&probe, 0));
    }

    #[test]
    fn shared_forget_wipes_the_fleet_sketch() {
        let pool = Arc::new(SharedDoorkeeper::new(TrackerBudget::capped(8), 2));
        let mut a = FeatureTracker::with_shared_pool(
            (1..=4).collect(),
            CostModel::ByteHitRatio,
            pool.clone(),
            0,
        );
        let mut b =
            FeatureTracker::with_shared_pool((1..=4).collect(), CostModel::ByteHitRatio, pool, 1);
        a.record(&req(10, 1, 10));
        b.forget_older_than(50);
        // The wipe is fleet-wide: shard B's forget cleared A's sighting.
        let f = a.features(&req(60, 1, 10), 0);
        assert_eq!(f[3], MISSING_GAP);
    }

    #[test]
    fn bounded_memory_stays_flat_as_the_catalog_grows() {
        let mut tr = bounded(64);
        for id in 0..200u64 {
            tr.record(&req(id, id, 10));
            tr.record(&req(id + 1_000_000, id, 10));
        }
        let mid = tr.approximate_bytes();
        for id in 200..2_000u64 {
            tr.record(&req(id + 2_000_000, id, 10));
            tr.record(&req(id + 3_000_000, id, 10));
        }
        assert_eq!(tr.tracked_objects(), 64);
        // The sketch is fixed-size and histories are capped, so growing
        // the catalog 10x leaves the footprint essentially unchanged.
        assert!(tr.approximate_bytes() <= mid + mid / 4);
    }
}
