//! LFO's online features (paper §2.2).
//!
//! Four feature types per request:
//!
//! - **object size** in bytes;
//! - **most recent retrieval cost** of the object;
//! - **currently free bytes in the cache** — "useful because evictions can
//!   temporarily free up lots of space [...] If this happens, OPT and LFO
//!   are more likely to admit a new object";
//! - **time gaps between consecutive requests** to the object, up to the
//!   last 50 requests. Gaps are deltas between consecutive reference times
//!   (`t − t₁, t₁ − t₂, …`), which makes all but the first one *shift
//!   invariant* — the property the paper highlights for robustness,
//!   distinguishing LFO's features from LRU-K's absolute recencies.
//!
//! The tracker stores per-object reference times sparsely ("a large
//! fraction of CDN objects receives fewer than 5 requests", §2.2) and
//! exposes [`FeatureTracker::forget_older_than`] to bound memory on long
//! streams.

use std::collections::{HashMap, VecDeque};

use cdn_trace::{CostModel, ObjectId, Request};
use serde::{Deserialize, Serialize};

/// Default number of gaps tracked (the paper's 50).
pub const FEATURE_GAPS: usize = 50;

/// Sentinel value for "no such past request" gap slots. Chosen large so
/// that quantile binning puts all missing gaps into the top bin.
pub const MISSING_GAP: f32 = 1.0e12;

/// A bounded, serializable snapshot of tracker history.
///
/// The LFO model is only half of the learned state — its gap features come
/// from per-object request history, and a model scoring a history-less
/// tracker sees the missing-gap sentinel everywhere (every object looks
/// first-seen, so the admission filter bypasses the entire working set).
/// Persisting a snapshot of the hottest objects alongside the model lets a
/// restarted pipeline serve meaningful predictions from its first request.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TrackerSnapshot {
    /// `(object id, reference times most recent first)`, ordered most
    /// recently touched first, truncated to the snapshot bound.
    pub entries: Vec<(u64, Vec<u64>)>,
}

impl TrackerSnapshot {
    /// Number of objects captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot captured nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Tracks per-object request history and produces feature vectors.
#[derive(Clone, Debug)]
pub struct FeatureTracker {
    /// 1-based gap indices emitted as features, ascending. The dense
    /// default is `1..=n`; Figure 8's discussion suggests thinning to
    /// powers of two ("only using time gaps 1, 2, 4, 8, 16, etc.") to
    /// shrink the model without losing the long-range signal.
    schedule: Vec<usize>,
    /// Deepest gap tracked (`max(schedule)`).
    depth: usize,
    cost_model: CostModel,
    /// Reference times per object, most recent first, at most
    /// `depth + 1` entries.
    history: HashMap<ObjectId, VecDeque<u64>>,
    /// Last time each object was touched (for forgetting).
    last_touch: HashMap<ObjectId, u64>,
}

impl FeatureTracker {
    /// Creates a tracker for the dense schedule `1..=num_gaps`.
    pub fn new(num_gaps: usize, cost_model: CostModel) -> Self {
        Self::with_schedule((1..=num_gaps).collect(), cost_model)
    }

    /// Creates a tracker emitting only the given 1-based gap indices.
    ///
    /// # Panics
    ///
    /// Panics if `schedule` is empty, unsorted, non-unique, or contains 0.
    pub fn with_schedule(schedule: Vec<usize>, cost_model: CostModel) -> Self {
        assert!(!schedule.is_empty(), "schedule must be non-empty");
        assert!(
            schedule.windows(2).all(|w| w[0] < w[1]) && schedule[0] >= 1,
            "schedule must be ascending, unique, 1-based"
        );
        let depth = *schedule.last().expect("non-empty");
        FeatureTracker {
            schedule,
            depth,
            cost_model,
            history: HashMap::new(),
            last_touch: HashMap::new(),
        }
    }

    /// Number of gap features produced.
    pub fn num_gaps(&self) -> usize {
        self.schedule.len()
    }

    /// The gap indices emitted as features.
    pub fn schedule(&self) -> &[usize] {
        &self.schedule
    }

    /// Number of objects currently tracked.
    pub fn tracked_objects(&self) -> usize {
        self.history.len()
    }

    /// Builds the feature vector for `request` *before* recording it, with
    /// `free_bytes` as the current free-cache-space feature.
    ///
    /// Layout: `[size, cost, free, gap_1, ..., gap_n]`, matching
    /// [`crate::LfoConfig::feature_names`].
    pub fn features(&self, request: &Request, free_bytes: u64) -> Vec<f32> {
        let mut out = Vec::with_capacity(3 + self.schedule.len());
        self.features_into(request, free_bytes, &mut out);
        out
    }

    /// Like [`Self::features`], but writes into `out` (cleared first)
    /// instead of allocating — the serving hot path reuses one scratch
    /// buffer per cache instead of heap-allocating per request.
    pub fn features_into(&self, request: &Request, free_bytes: u64, out: &mut Vec<f32>) {
        out.clear();
        out.push(request.size as f32);
        out.push(self.cost_model.cost(request.size) as f32);
        out.push(free_bytes as f32);
        match self.history.get(&request.object) {
            Some(times) => {
                // gap_1 = now − t₁; gap_k = t_{k−1} − t_k (shift invariant).
                // Walk the dense gaps to the tracked depth, emitting only
                // the scheduled indices as they pass by.
                let mut prev = request.time;
                let mut next = 0usize; // index into the ascending schedule
                for k in 0..self.depth {
                    let gap = match times.get(k) {
                        Some(&t) => {
                            let g = prev.saturating_sub(t) as f32;
                            prev = t;
                            g
                        }
                        None => MISSING_GAP,
                    };
                    if self.schedule[next] == k + 1 {
                        out.push(gap);
                        next += 1;
                        if next == self.schedule.len() {
                            break;
                        }
                    }
                }
            }
            None => out.extend(std::iter::repeat_n(MISSING_GAP, self.schedule.len())),
        }
    }

    /// Records a request into the history (call after [`Self::features`]).
    pub fn record(&mut self, request: &Request) {
        let times = self.history.entry(request.object).or_default();
        times.push_front(request.time);
        times.truncate(self.depth + 1);
        self.last_touch.insert(request.object, request.time);
    }

    /// Convenience: features, then record.
    pub fn observe(&mut self, request: &Request, free_bytes: u64) -> Vec<f32> {
        let f = self.features(request, free_bytes);
        self.record(request);
        f
    }

    /// Snapshots the histories of the `limit` most recently touched
    /// objects (ties broken by object id, so snapshots are deterministic).
    pub fn snapshot(&self, limit: usize) -> TrackerSnapshot {
        let mut order: Vec<(u64, u64)> = self
            .last_touch
            .iter()
            .map(|(object, &touch)| (object.0, touch))
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let entries = order
            .into_iter()
            .take(limit)
            .filter_map(|(id, _)| {
                self.history
                    .get(&ObjectId(id))
                    .map(|times| (id, times.iter().copied().collect()))
            })
            .collect();
        TrackerSnapshot { entries }
    }

    /// Loads snapshot history into this tracker. Snapshot entries replace
    /// any same-object history; other state is kept. Histories deeper than
    /// this tracker's schedule are truncated.
    pub fn load_snapshot(&mut self, snapshot: &TrackerSnapshot) {
        for (id, times) in &snapshot.entries {
            let object = ObjectId(*id);
            let mut deque: VecDeque<u64> = times.iter().copied().collect();
            deque.truncate(self.depth + 1);
            if let Some(&latest) = deque.front() {
                self.last_touch.insert(object, latest);
            }
            self.history.insert(object, deque);
        }
    }

    /// Drops history for objects not touched since `time`, bounding memory
    /// on unbounded streams.
    pub fn forget_older_than(&mut self, time: u64) {
        let last_touch = &self.last_touch;
        self.history
            .retain(|o, _| last_touch.get(o).copied().unwrap_or(0) >= time);
        self.last_touch.retain(|_, &mut t| t >= time);
    }

    /// Approximate bytes of tracker state (the paper estimates 208 bytes
    /// per object for a naive dense representation; the sparse tracker
    /// only pays for requests actually seen).
    pub fn approximate_bytes(&self) -> usize {
        self.history
            .values()
            .map(|v| 8 * v.len() + 48)
            .sum::<usize>()
            + self.last_touch.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> FeatureTracker {
        FeatureTracker::new(4, CostModel::ByteHitRatio)
    }

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    #[test]
    fn layout_and_basic_values() {
        let mut tr = tracker();
        let f = tr.observe(&req(100, 1, 512), 4096);
        assert_eq!(f.len(), 3 + 4);
        assert_eq!(f[0], 512.0); // size
        assert_eq!(f[1], 512.0); // cost = size under BHR
        assert_eq!(f[2], 4096.0); // free bytes
        assert!(f[3..].iter().all(|&g| g == MISSING_GAP));
    }

    #[test]
    fn gaps_are_consecutive_deltas() {
        let mut tr = tracker();
        tr.record(&req(10, 1, 100));
        tr.record(&req(25, 1, 100));
        tr.record(&req(31, 1, 100));
        let f = tr.features(&req(40, 1, 100), 0);
        // gap1 = 40-31, gap2 = 31-25, gap3 = 25-10, gap4 missing.
        assert_eq!(f[3], 9.0);
        assert_eq!(f[4], 6.0);
        assert_eq!(f[5], 15.0);
        assert_eq!(f[6], MISSING_GAP);
    }

    #[test]
    fn shift_invariance_of_deep_gaps() {
        // Shifting all times by a constant leaves gaps 2..n unchanged and
        // gap 1 unchanged too when the query time shifts equally.
        let mut a = tracker();
        let mut b = tracker();
        for &t in &[5u64, 9, 20] {
            a.record(&req(t, 1, 10));
            b.record(&req(t + 1000, 1, 10));
        }
        let fa = a.features(&req(30, 1, 10), 7);
        let fb = b.features(&req(1030, 1, 10), 7);
        assert_eq!(fa, fb);
    }

    #[test]
    fn history_is_bounded_per_object() {
        let mut tr = tracker();
        for t in 0..100 {
            tr.record(&req(t, 1, 10));
        }
        assert!(tr.history[&ObjectId(1)].len() <= 5);
    }

    #[test]
    fn cost_model_drives_cost_feature() {
        let mut tr = FeatureTracker::new(2, CostModel::ObjectHitRatio);
        let f = tr.observe(&req(0, 1, 9999), 0);
        assert_eq!(f[1], 1.0);
    }

    #[test]
    fn forgetting_drops_cold_objects() {
        let mut tr = tracker();
        tr.record(&req(10, 1, 10));
        tr.record(&req(500, 2, 10));
        tr.forget_older_than(100);
        assert_eq!(tr.tracked_objects(), 1);
        // Forgotten object looks brand new again.
        let f = tr.features(&req(600, 1, 10), 0);
        assert_eq!(f[3], MISSING_GAP);
    }

    #[test]
    fn observe_equals_features_then_record() {
        let mut a = tracker();
        let mut b = tracker();
        let r1 = req(5, 1, 10);
        let r2 = req(9, 1, 10);
        let fa1 = a.observe(&r1, 3);
        let fa2 = a.observe(&r2, 3);
        let fb1 = b.features(&r1, 3);
        b.record(&r1);
        let fb2 = b.features(&r2, 3);
        b.record(&r2);
        assert_eq!(fa1, fb1);
        assert_eq!(fa2, fb2);
    }

    #[test]
    fn thinned_schedule_emits_selected_gaps_only() {
        let mut tr = FeatureTracker::with_schedule(vec![1, 2, 4], CostModel::ByteHitRatio);
        for &t in &[10u64, 20, 26, 29, 31] {
            tr.record(&req(t, 1, 10));
        }
        let f = tr.features(&req(40, 1, 10), 0);
        assert_eq!(f.len(), 3 + 3);
        // Dense gaps would be [9, 2, 3, 6, 10]; schedule picks 1, 2, 4.
        assert_eq!(f[3], 9.0);
        assert_eq!(f[4], 2.0);
        assert_eq!(f[5], 6.0);
    }

    #[test]
    fn thinned_schedule_tracks_deep_history() {
        let mut tr = FeatureTracker::with_schedule(vec![1, 8], CostModel::ByteHitRatio);
        for t in 0..20u64 {
            tr.record(&req(t, 1, 10));
        }
        // Depth 8 means 9 retained reference times.
        assert_eq!(tr.history[&ObjectId(1)].len(), 9);
        let f = tr.features(&req(100, 1, 10), 0);
        assert_eq!(f[3], 81.0); // 100 - 19
        assert_eq!(f[4], 1.0); // consecutive unit gaps deep in history
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_schedule_rejected() {
        FeatureTracker::with_schedule(vec![2, 1], CostModel::ByteHitRatio);
    }

    #[test]
    fn features_into_matches_features_and_reuses_the_buffer() {
        let mut dense = FeatureTracker::new(6, CostModel::ByteHitRatio);
        let mut thinned = FeatureTracker::with_schedule(vec![1, 3, 6], CostModel::ByteHitRatio);
        let mut scratch = Vec::new();
        for t in 0..40u64 {
            let r = req(t * 3, t % 5, 10 + t);
            for tr in [&mut dense, &mut thinned] {
                let allocated = tr.features(&r, 17);
                tr.features_into(&r, 17, &mut scratch);
                assert_eq!(allocated, scratch);
            }
            dense.record(&r);
            thinned.record(&r);
        }
        // The scratch buffer's capacity stabilizes — no per-call growth.
        let cap = scratch.capacity();
        let r = req(1000, 1, 10);
        dense.features_into(&r, 0, &mut scratch);
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn memory_estimate_grows_with_objects() {
        let mut tr = tracker();
        let before = tr.approximate_bytes();
        for i in 0..100 {
            tr.record(&req(i, i, 10));
        }
        assert!(tr.approximate_bytes() > before);
    }

    #[test]
    fn snapshot_roundtrip_restores_identical_features() {
        let mut tr = tracker();
        for t in 0..200u64 {
            tr.record(&req(t * 7, t % 13, 10 + t));
        }
        let snapshot = tr.snapshot(usize::MAX);
        let mut restored = tracker();
        restored.load_snapshot(&snapshot);
        for id in 0..13u64 {
            let probe = req(5_000, id, 64);
            assert_eq!(tr.features(&probe, 100), restored.features(&probe, 100));
        }
    }

    #[test]
    fn snapshot_bounds_to_most_recently_touched() {
        let mut tr = tracker();
        for t in 0..50u64 {
            tr.record(&req(t, t, 10)); // object id == touch time
        }
        let snapshot = tr.snapshot(5);
        assert_eq!(snapshot.len(), 5);
        // Most recently touched first: objects 49 down to 45.
        let ids: Vec<u64> = snapshot.entries.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![49, 48, 47, 46, 45]);
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let mut tr = tracker();
        for t in 0..30u64 {
            tr.record(&req(t * 11, t % 4, 10));
        }
        let snapshot = tr.snapshot(usize::MAX);
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: TrackerSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snapshot, back);
    }

    #[test]
    fn deep_snapshot_truncates_to_schedule_depth() {
        let mut deep = FeatureTracker::new(8, CostModel::ByteHitRatio);
        for t in 0..20u64 {
            deep.record(&req(t, 1, 10));
        }
        let mut shallow = tracker(); // depth 4
        shallow.load_snapshot(&deep.snapshot(usize::MAX));
        let probe = req(100, 1, 10);
        let f = shallow.features(&probe, 0);
        assert_eq!(f.len(), 3 + 4);
        assert!(f[3..].iter().all(|&g| g != MISSING_GAP));
    }
}
