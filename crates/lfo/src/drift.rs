//! Workload-drift detection.
//!
//! The paper's motivation (§1) is that "content mix changes can happen
//! within minutes" (load balancing, multi-CDN traffic shifts, release-day
//! spikes). LFO's fixed-cadence retraining handles slow drift; this module
//! adds the production guardrail: detect *abrupt* distribution shift
//! between the window a model was trained on and the live traffic, so a
//! deployment can retrain early (or roll back) instead of serving a stale
//! model through a flash crowd. The staged pipeline's drift rollout gate
//! ([`crate::DriftGate`]) is built on this module.
//!
//! Detection compares per-feature histograms of the training window
//! against a live window using the population stability index (PSI) — the
//! standard model-monitoring statistic: `PSI = Σ (pᵢ − qᵢ)·ln(pᵢ/qᵢ)` over
//! histogram bins. Common practice: PSI < 0.1 stable, 0.1–0.25 drifting,
//! > 0.25 shifted.
//!
//! Because the gate runs inside the pipeline's control plane, this API is
//! total: malformed inputs (empty references, ragged rows, feature-count
//! mismatches) return [`DriftError`] instead of panicking, NaN values sort
//! and bin deterministically via total ordering, and Laplace smoothing
//! keeps every PSI term finite — a drift check must never be able to take
//! down the serving path it guards.

use serde::{Deserialize, Serialize};

/// Number of histogram bins per feature.
const BINS: usize = 16;
/// Laplace smoothing mass per bin.
const SMOOTHING: f64 = 0.5;

/// Why a drift computation could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriftError {
    /// [`FeatureSketch::fit`] needs at least one reference row.
    EmptyReference,
    /// A reference row's width differs from the first row's.
    RaggedRows {
        /// Index of the offending row.
        row: usize,
        /// Width of row 0.
        expected: usize,
        /// Width of the offending row.
        got: usize,
    },
    /// A scored row's width differs from the sketch's feature count.
    FeatureMismatch {
        /// The sketch's feature count.
        expected: usize,
        /// Width of the offending row.
        got: usize,
    },
}

impl std::fmt::Display for DriftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriftError::EmptyReference => write!(f, "cannot fit a sketch on zero rows"),
            DriftError::RaggedRows { row, expected, got } => {
                write!(f, "row {row} has {got} features, row 0 has {expected}")
            }
            DriftError::FeatureMismatch { expected, got } => {
                write!(f, "row has {got} features, sketch has {expected}")
            }
        }
    }
}

impl std::error::Error for DriftError {}

/// A per-feature histogram sketch of a feature distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FeatureSketch {
    /// Per feature: bin edges (quantiles of the reference window).
    edges: Vec<Vec<f32>>,
    /// Per feature: reference bin probabilities.
    reference: Vec<Vec<f64>>,
}

impl FeatureSketch {
    /// Builds a sketch from the training window's feature rows.
    ///
    /// Constant features are fine (every quantile edge collapses to the
    /// same value; all mass lands in one smoothed bin), as are NaN values
    /// (totally ordered into the edge bins). Empty or ragged input is a
    /// [`DriftError`].
    pub fn fit(rows: &[Vec<f32>]) -> Result<Self, DriftError> {
        if rows.is_empty() {
            return Err(DriftError::EmptyReference);
        }
        let width = rows[0].len();
        if let Some((row, r)) = rows.iter().enumerate().find(|(_, r)| r.len() != width) {
            return Err(DriftError::RaggedRows {
                row,
                expected: width,
                got: r.len(),
            });
        }
        let mut edges = Vec::with_capacity(width);
        let mut reference = Vec::with_capacity(width);
        for f in 0..width {
            let mut column: Vec<f32> = rows.iter().map(|r| r[f]).collect();
            column.sort_by(|a, b| a.total_cmp(b));
            // Quantile edges over the reference distribution.
            let e: Vec<f32> = (1..BINS)
                .map(|i| column[(i * column.len()) / BINS])
                .collect();
            let counts = bin_counts(rows.iter().map(|r| r[f]), &e);
            let total: f64 = counts.iter().sum::<f64>();
            reference.push(counts.into_iter().map(|c| c / total).collect());
            edges.push(e);
        }
        Ok(FeatureSketch { edges, reference })
    }

    /// Number of features sketched.
    pub fn num_features(&self) -> usize {
        self.edges.len()
    }

    /// Population stability index of `rows` against the reference, per
    /// feature. An empty live window scores zero on every feature (no
    /// evidence of drift); a row of the wrong width is a
    /// [`DriftError::FeatureMismatch`].
    pub fn psi(&self, rows: &[Vec<f32>]) -> Result<Vec<f64>, DriftError> {
        if rows.is_empty() {
            return Ok(vec![0.0; self.num_features()]);
        }
        let width = self.num_features();
        if let Some(r) = rows.iter().find(|r| r.len() != width) {
            return Err(DriftError::FeatureMismatch {
                expected: width,
                got: r.len(),
            });
        }
        Ok((0..width)
            .map(|f| {
                let counts = bin_counts(rows.iter().map(|r| r[f]), &self.edges[f]);
                let total: f64 = counts.iter().sum();
                let mut psi = 0.0;
                for (b, &c) in counts.iter().enumerate() {
                    let q = c / total;
                    let p = self.reference[f][b];
                    psi += (q - p) * (q / p).ln();
                }
                psi
            })
            .collect())
    }

    /// The largest per-feature PSI — the deployment's drift score.
    pub fn max_psi(&self, rows: &[Vec<f32>]) -> Result<f64, DriftError> {
        Ok(self.psi(rows)?.into_iter().fold(0.0, f64::max))
    }

    /// Standard interpretation of a drift score.
    pub fn verdict(score: f64) -> DriftVerdict {
        if score < 0.1 {
            DriftVerdict::Stable
        } else if score < 0.25 {
            DriftVerdict::Drifting
        } else {
            DriftVerdict::Shifted
        }
    }
}

/// Interpretation bands for PSI scores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriftVerdict {
    /// Distributions match; keep serving the model.
    Stable,
    /// Noticeable movement; schedule an early retrain.
    Drifting,
    /// The workload changed; retrain now.
    Shifted,
}

fn bin_counts(values: impl Iterator<Item = f32>, edges: &[f32]) -> Vec<f64> {
    let mut counts = vec![SMOOTHING; edges.len() + 1];
    for v in values {
        let bin = edges.partition_point(|&e| e.total_cmp(&v).is_lt());
        counts[bin] += 1.0;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureTracker;
    use cdn_trace::generator::{FlashCrowd, GeneratorConfig, TraceGenerator};
    use cdn_trace::CostModel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_rows(n: usize, mean: f32, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f32 = rng.gen();
                let v: f32 = rng.gen();
                vec![
                    mean + (u - 0.5) * 2.0,
                    10.0 + (v - 0.5), // second feature stays fixed
                ]
            })
            .collect()
    }

    #[test]
    fn identical_distribution_scores_stable() {
        let sketch = FeatureSketch::fit(&gaussian_rows(5_000, 0.0, 1)).unwrap();
        let score = sketch.max_psi(&gaussian_rows(5_000, 0.0, 2)).unwrap();
        assert!(score < 0.1, "score {score}");
        assert_eq!(FeatureSketch::verdict(score), DriftVerdict::Stable);
    }

    #[test]
    fn mean_shift_is_detected_on_the_right_feature() {
        let sketch = FeatureSketch::fit(&gaussian_rows(5_000, 0.0, 3)).unwrap();
        let shifted = gaussian_rows(5_000, 1.5, 4);
        let psi = sketch.psi(&shifted).unwrap();
        assert!(psi[0] > 0.25, "feature 0 psi {}", psi[0]);
        assert!(psi[1] < 0.1, "feature 1 psi {}", psi[1]);
        assert_eq!(
            FeatureSketch::verdict(sketch.max_psi(&shifted).unwrap()),
            DriftVerdict::Shifted
        );
    }

    #[test]
    fn flash_crowd_raises_the_drift_score_on_lfo_features() {
        // Train the sketch on calm traffic; a flash crowd (30% of requests
        // to 4 fresh multi-MB objects) must raise the drift score.
        let mut cfg = GeneratorConfig::small(9, 30_000);
        cfg.flash_crowds = vec![FlashCrowd {
            start: 15_000,
            duration: 15_000,
            share: 0.5,
            objects: 4,
            class: 3,
        }];
        let trace = TraceGenerator::new(cfg).generate();
        let mut tracker = FeatureTracker::new(8, CostModel::ByteHitRatio);
        let rows: Vec<Vec<f32>> = trace
            .requests()
            .iter()
            .map(|r| tracker.observe(r, 0))
            .collect();
        let sketch = FeatureSketch::fit(&rows[..15_000]).unwrap();
        let calm = sketch.max_psi(&rows[10_000..15_000]).unwrap();
        let crowd = sketch.max_psi(&rows[15_000..]).unwrap();
        assert!(
            crowd > calm * 2.0,
            "crowd psi {crowd} not clearly above calm psi {calm}"
        );
    }

    #[test]
    fn empty_live_window_scores_zero() {
        let sketch = FeatureSketch::fit(&gaussian_rows(100, 0.0, 5)).unwrap();
        assert_eq!(sketch.max_psi(&[]).unwrap(), 0.0);
        assert_eq!(sketch.psi(&[]).unwrap(), vec![0.0; 2]);
    }

    #[test]
    fn empty_reference_is_an_error_not_a_panic() {
        assert_eq!(
            FeatureSketch::fit(&[]).unwrap_err(),
            DriftError::EmptyReference
        );
    }

    #[test]
    fn ragged_reference_is_an_error_not_a_panic() {
        let rows = vec![vec![1.0, 2.0], vec![1.0, 2.0, 3.0]];
        assert_eq!(
            FeatureSketch::fit(&rows).unwrap_err(),
            DriftError::RaggedRows {
                row: 1,
                expected: 2,
                got: 3
            }
        );
    }

    #[test]
    fn feature_count_mismatch_is_an_error_not_a_panic() {
        let sketch = FeatureSketch::fit(&gaussian_rows(100, 0.0, 6)).unwrap();
        let wrong = vec![vec![1.0, 2.0, 3.0]];
        assert_eq!(
            sketch.psi(&wrong).unwrap_err(),
            DriftError::FeatureMismatch {
                expected: 2,
                got: 3
            }
        );
        assert!(sketch.max_psi(&wrong).is_err());
    }

    #[test]
    fn constant_features_stay_finite() {
        // Every quantile edge collapses onto the same value: all mass in
        // one bin, zero-width everywhere else. Identical live rows must
        // score (near) zero, not NaN, and a shifted constant must score
        // high but finite.
        let rows: Vec<Vec<f32>> = (0..500).map(|_| vec![42.0, 7.0]).collect();
        let sketch = FeatureSketch::fit(&rows).unwrap();
        let same = sketch.max_psi(&rows).unwrap();
        assert!(same.is_finite() && same < 0.1, "same-constant psi {same}");
        let moved: Vec<Vec<f32>> = (0..500).map(|_| vec![999.0, 7.0]).collect();
        let shifted = sketch.max_psi(&moved).unwrap();
        assert!(shifted.is_finite(), "shifted-constant psi {shifted}");
        assert!(shifted > 0.25, "shifted-constant psi {shifted}");
    }

    #[test]
    fn nan_values_bin_deterministically() {
        // Total order places NaN deterministically at the edge bins;
        // scoring a NaN-bearing window must neither panic nor produce NaN.
        let mut rows = gaussian_rows(200, 0.0, 8);
        rows[3][0] = f32::NAN;
        let sketch = FeatureSketch::fit(&rows).unwrap();
        let score = sketch.max_psi(&rows).unwrap();
        assert!(score.is_finite(), "psi {score}");
    }

    #[test]
    fn sketch_serde_roundtrip() {
        let sketch = FeatureSketch::fit(&gaussian_rows(500, 0.0, 6)).unwrap();
        let json = serde_json::to_string(&sketch).unwrap();
        let back: FeatureSketch = serde_json::from_str(&json).unwrap();
        let rows = gaussian_rows(500, 0.7, 7);
        let a = sketch.max_psi(&rows).unwrap();
        let b = back.max_psi(&rows).unwrap();
        assert!((a - b).abs() < 1e-12);
    }
}
