//! The LFO caching policy (paper §2.4).
//!
//! "For every request, we call the LFO predictor to estimate how likely OPT
//! is going to cache the object. If the confidence is ≥ .5, we admit the
//! object into the cache. Furthermore, we rank objects in the cache by
//! their predicted likelihood. If we need to evict an object, we evict the
//! one with the smallest predicted likelihood. Finally, we re-evaluate the
//! likelihood of an object when it is requested again. So, it may happen
//! (unlike in existing systems), that a cache hit leads to the eviction of
//! the hit object (which matches OPT frequently doing the same)."
//!
//! Until the first model is installed, the policy falls back to LRU
//! (admit everything; recency as the likelihood), so the pipeline's first
//! window behaves like a plain cache while LFO collects its first OPT
//! labels.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cdn_trace::{ObjectId, Request};
use gbdt::Model;

use cdn_cache::cache::{CachePolicy, RequestOutcome};

use crate::config::{LfoConfig, PolicyDesign};
use crate::features::FeatureTracker;

/// A shared publication point for trained models and admission cutoffs.
///
/// The staged pipeline's trainer publishes through a clone of the slot while
/// the cache serves requests on another thread; the cache notices the bumped
/// version on its next request and refreshes its local `Arc<Model>` — an
/// atomic rollout without locking the serving hot path (the fast path is a
/// single atomic load).
#[derive(Clone, Default)]
pub struct ModelSlot {
    inner: Arc<SlotInner>,
}

#[derive(Default)]
struct SlotInner {
    version: AtomicU64,
    state: Mutex<SlotState>,
}

#[derive(Clone, Default)]
struct SlotState {
    model: Option<Arc<Model>>,
    cutoff: Option<f64>,
}

impl ModelSlot {
    /// An empty slot (no model, no cutoff override).
    pub fn new() -> Self {
        ModelSlot::default()
    }

    /// Publishes a model and its admission cutoff as one rollout event.
    pub fn publish(&self, model: Arc<Model>, cutoff: f64) {
        let mut state = self.inner.state.lock().expect("slot lock poisoned");
        state.model = Some(model);
        state.cutoff = Some(cutoff);
        self.inner.version.fetch_add(1, Ordering::Release);
    }

    /// Publishes a model, leaving the cutoff as previously published.
    pub fn publish_model(&self, model: Arc<Model>) {
        let mut state = self.inner.state.lock().expect("slot lock poisoned");
        state.model = Some(model);
        self.inner.version.fetch_add(1, Ordering::Release);
    }

    /// Publishes a cutoff, leaving the model as previously published.
    pub fn publish_cutoff(&self, cutoff: f64) {
        let mut state = self.inner.state.lock().expect("slot lock poisoned");
        state.cutoff = Some(cutoff);
        self.inner.version.fetch_add(1, Ordering::Release);
    }

    /// The current publication version (bumped on every publish).
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// Whether a model has ever been published.
    pub fn has_model(&self) -> bool {
        self.inner
            .state
            .lock()
            .expect("slot lock poisoned")
            .model
            .is_some()
    }

    /// A consistent (version, model, cutoff) snapshot.
    fn snapshot(&self) -> (u64, Option<Arc<Model>>, Option<f64>) {
        let state = self.inner.state.lock().expect("slot lock poisoned");
        let version = self.inner.version.load(Ordering::Acquire);
        (version, state.model.clone(), state.cutoff)
    }
}

/// Priority key in the eviction queue (ordered ascending: victim first).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Priority(f64);

impl Eq for Priority {}
impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    priority: Priority,
    tiebreak: u64,
    size: u64,
}

/// The LFO cache: confidence-ranked admission and eviction.
pub struct LfoCache {
    capacity: u64,
    used: u64,
    config: LfoConfig,
    model: Option<Arc<Model>>,
    slot: ModelSlot,
    slot_seen: u64,
    tracker: FeatureTracker,
    queue: BTreeSet<(Priority, u64, ObjectId)>,
    entries: HashMap<ObjectId, Entry>,
    tick: u64,
    /// Sampling stride for live feature rows (0 = sampling off).
    sample_every: usize,
    /// Sampled live feature rows since the last
    /// [`LfoCache::take_feature_samples`] — the drift gate's view of the
    /// serving-side distribution.
    samples: Vec<Vec<f32>>,
    /// Count of hits whose re-scoring dropped the object below every other
    /// resident (the paper's "a hit may evict the hit object" events are a
    /// subset of these).
    pub rescored_to_bottom: u64,
}

impl LfoCache {
    /// Creates an LFO cache of `capacity` bytes with no model installed
    /// (LRU fallback until [`LfoCache::install_model`] is called).
    pub fn new(capacity: u64, config: LfoConfig) -> Self {
        LfoCache::with_slot(capacity, config, ModelSlot::new())
    }

    /// Creates an LFO cache attached to an externally shared [`ModelSlot`];
    /// models published through any clone of the slot (e.g. from a trainer
    /// thread) roll out on the cache's next request.
    pub fn with_slot(capacity: u64, config: LfoConfig, slot: ModelSlot) -> Self {
        let tracker = config.tracker();
        let mut cache = LfoCache {
            capacity,
            used: 0,
            config,
            model: None,
            slot,
            slot_seen: 0,
            tracker,
            queue: BTreeSet::new(),
            entries: HashMap::new(),
            tick: 0,
            sample_every: 0,
            samples: Vec::new(),
            rescored_to_bottom: 0,
        };
        cache.sync_slot();
        cache
    }

    /// The publication slot this cache refreshes from.
    pub fn slot(&self) -> &ModelSlot {
        &self.slot
    }

    /// Installs (or replaces) the trained model; subsequent requests are
    /// scored with it. Existing residents keep their old priorities until
    /// re-requested, exactly like a production rollout would.
    pub fn install_model(&mut self, model: Arc<Model>) {
        self.slot.publish_model(model);
        self.sync_slot();
    }

    /// Whether a model is installed (directly or via the shared slot).
    pub fn has_model(&self) -> bool {
        self.slot.has_model()
    }

    /// Updates the admission cutoff (used by per-window cutoff tuning).
    pub fn set_cutoff(&mut self, cutoff: f64) {
        self.slot.publish_cutoff(cutoff);
        self.sync_slot();
    }

    /// Pulls the latest published (model, cutoff) out of the slot if its
    /// version moved. The fast path — no new publication — is one atomic
    /// load.
    fn sync_slot(&mut self) {
        if self.slot.version() == self.slot_seen {
            return;
        }
        let (version, model, cutoff) = self.slot.snapshot();
        if let Some(model) = model {
            self.model = Some(model);
        }
        if let Some(cutoff) = cutoff {
            self.config.cutoff = cutoff;
        }
        self.slot_seen = version;
    }

    /// Current admission cutoff.
    pub fn cutoff(&self) -> f64 {
        self.config.cutoff
    }

    /// Eviction priority for an object under the configured design:
    /// raw likelihood for [`PolicyDesign::Paper`] and
    /// [`PolicyDesign::ProtectedAdmission`], expected saved miss cost per
    /// byte (`likelihood × C/S`) for [`PolicyDesign::DensityRanked`].
    fn eviction_priority(&self, likelihood: f64, size: u64) -> f64 {
        match self.config.design {
            PolicyDesign::Paper | PolicyDesign::ProtectedAdmission => likelihood,
            PolicyDesign::DensityRanked => {
                likelihood * self.config.cost_model.cost(size) as f64 / size as f64
            }
        }
    }

    /// The feature tracker (shared state with the training pipeline).
    pub fn tracker_mut(&mut self) -> &mut FeatureTracker {
        &mut self.tracker
    }

    /// Starts sampling every `every`-th request's feature row (0 disables).
    /// The staged pipeline's drift gate uses this to compare the live
    /// serving distribution against each candidate's training window.
    pub fn enable_feature_sampling(&mut self, every: usize) {
        self.sample_every = every;
        self.samples.clear();
    }

    /// Takes the feature rows sampled since the last call (typically one
    /// serving window's worth), leaving the buffer empty.
    pub fn take_feature_samples(&mut self) -> Vec<Vec<f32>> {
        std::mem::take(&mut self.samples)
    }

    /// Predicted likelihood that OPT would cache this request, or `None`
    /// while no model is installed.
    fn score(&self, features: &[f32]) -> Option<f64> {
        self.model.as_ref().map(|m| m.predict_proba(features))
    }

    fn queue_remove(&mut self, object: ObjectId, entry: &Entry) {
        let removed = self.queue.remove(&(entry.priority, entry.tiebreak, object));
        debug_assert!(removed, "queue out of sync");
    }

    fn queue_insert(&mut self, object: ObjectId, entry: Entry) {
        self.entries.insert(object, entry);
        self.queue.insert((entry.priority, entry.tiebreak, object));
    }

    fn evict_min(&mut self) {
        let &(p, t, victim) = self.queue.iter().next().expect("nonempty");
        self.queue.remove(&(p, t, victim));
        let entry = self.entries.remove(&victim).expect("entry exists");
        self.used -= entry.size;
    }
}

impl CachePolicy for LfoCache {
    fn name(&self) -> &'static str {
        "LFO"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.entries.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.sync_slot();
        self.tick += 1;
        let free = self.capacity - self.used;
        let features = self.tracker.observe(request, free);
        if self.sample_every != 0 && self.tick.is_multiple_of(self.sample_every as u64) {
            self.samples.push(features.clone());
        }
        // Likelihood that OPT caches this request; LRU fallback scores by
        // recency, normalized to stay within (0, 1).
        let likelihood = self
            .score(&features)
            .unwrap_or_else(|| 1.0 - 1.0 / (1.0 + self.tick as f64));

        if let Some(&entry) = self.entries.get(&request.object) {
            // Re-evaluate on every hit; the hit object may become the
            // eviction frontier (and even be evicted by a later admission).
            self.queue_remove(request.object, &entry);
            let updated = Entry {
                priority: Priority(self.eviction_priority(likelihood, entry.size)),
                tiebreak: self.tick,
                size: entry.size,
            };
            self.queue_insert(request.object, updated);
            if let Some(&(_, _, frontier)) = self.queue.iter().next() {
                if frontier == request.object {
                    self.rescored_to_bottom += 1;
                }
            }
            return RequestOutcome::Hit;
        }

        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        let priority = self.eviction_priority(likelihood, request.size);
        let admit = match self.model {
            Some(_) => {
                let above_cutoff = likelihood >= self.config.cutoff;
                match self.config.design {
                    PolicyDesign::Paper | PolicyDesign::DensityRanked => above_cutoff,
                    PolicyDesign::ProtectedAdmission => {
                        // The newcomer may only displace strictly weaker
                        // residents; with room to spare the cutoff decides.
                        above_cutoff
                            && (self.used + request.size <= self.capacity
                                || self
                                    .queue
                                    .iter()
                                    .next()
                                    .map(|&(Priority(p), _, _)| priority > p)
                                    .unwrap_or(true))
                    }
                }
            }
            None => true, // LRU fallback admits everything
        };
        if !admit {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.used + request.size > self.capacity {
            self.evict_min();
        }
        self.queue_insert(
            request.object,
            Entry {
                priority: Priority(priority),
                tiebreak: self.tick,
                size: request.size,
            },
        );
        self.used += request.size;
        RequestOutcome::Miss { admitted: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt::{train, Dataset, GbdtParams};

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    /// A model that predicts "cache" for small objects only: trained on
    /// (size) → size < 500.
    fn small_object_model() -> Arc<Model> {
        let cfg = LfoConfig::default();
        let rows: Vec<Vec<f32>> = (0..400)
            .map(|i| {
                let size = (i % 40) as f32 * 25.0 + 1.0;
                let mut row = vec![size, size, 1000.0];
                row.extend(std::iter::repeat_n(100.0, cfg.num_gaps));
                row
            })
            .collect();
        // Labels: small objects are always cacheable; mid-size objects
        // (200–500) only usually — so their predicted likelihood is
        // strictly between the small objects' and the large objects'.
        let labels: Vec<f32> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let size = r[0];
                if size < 200.0 {
                    1.0
                } else if size < 500.0 {
                    (i % 3 != 0) as u8 as f32
                } else {
                    0.0
                }
            })
            .collect();
        let data = Dataset::from_rows(rows, labels).unwrap();
        Arc::new(train(&data, &GbdtParams::lfo_paper()))
    }

    #[test]
    fn falls_back_to_lru_without_model() {
        let mut c = LfoCache::new(30, LfoConfig::default());
        assert!(!c.has_model());
        c.handle(&req(0, 1, 10));
        c.handle(&req(1, 2, 10));
        c.handle(&req(2, 3, 10));
        c.handle(&req(3, 1, 10)); // touch 1
        c.handle(&req(4, 4, 10)); // evict 2 (lowest recency priority)
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
    }

    #[test]
    fn model_gates_admission() {
        let mut c = LfoCache::new(10_000, LfoConfig::default());
        c.install_model(small_object_model());
        let small = c.handle(&req(0, 1, 100));
        let large = c.handle(&req(1, 2, 900));
        assert_eq!(small, RequestOutcome::Miss { admitted: true });
        assert_eq!(large, RequestOutcome::Miss { admitted: false });
    }

    #[test]
    fn evicts_lowest_likelihood_first() {
        let mut c = LfoCache::new(700, LfoConfig::default());
        c.install_model(small_object_model());
        // Admit a mid-size (likelihood lower) and a small (higher).
        c.handle(&req(0, 1, 400)); // low-ish likelihood
        c.handle(&req(1, 2, 100)); // high likelihood
                                   // A new small object forces one eviction: the 400-byte object goes.
        c.handle(&req(2, 3, 300));
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
        assert!(c.contains(ObjectId(3)));
    }

    #[test]
    fn hit_rescoring_can_doom_the_hit_object() {
        let mut c = LfoCache::new(600, LfoConfig::default());
        c.install_model(small_object_model());
        c.handle(&req(0, 1, 450)); // admitted (size < 500)
        c.handle(&req(1, 2, 100));
        // Hit object 1: re-scored. It stays the lowest-likelihood resident,
        // so the next admission evicts it even though it just hit.
        assert!(c.handle(&req(2, 1, 450)).is_hit());
        c.handle(&req(3, 3, 200));
        assert!(
            !c.contains(ObjectId(1)),
            "hit object should have been evicted"
        );
        assert!(c.rescored_to_bottom > 0);
    }

    #[test]
    fn capacity_respected_with_and_without_model() {
        let mut c = LfoCache::new(1_000, LfoConfig::default());
        for i in 0..300u64 {
            c.handle(&req(i, i % 31, 90));
            assert!(c.used() <= c.capacity());
        }
        c.install_model(small_object_model());
        for i in 300..600u64 {
            c.handle(&req(i, i % 31, 90));
            assert!(c.used() <= c.capacity());
        }
    }

    #[test]
    fn protected_admission_never_displaces_stronger_residents() {
        let config = LfoConfig {
            design: PolicyDesign::ProtectedAdmission,
            ..Default::default()
        };
        let mut c = LfoCache::new(600, config);
        c.install_model(small_object_model());
        // Two high-likelihood small objects fill the cache.
        c.handle(&req(0, 1, 150));
        c.handle(&req(1, 2, 150));
        c.handle(&req(2, 3, 150));
        c.handle(&req(3, 4, 150));
        // A mid-size object (weaker likelihood) passes the cutoff but must
        // NOT be admitted: it would displace a stronger resident.
        let out = c.handle(&req(4, 5, 400));
        assert_eq!(out, RequestOutcome::Miss { admitted: false });
        for id in 1..=4u64 {
            assert!(c.contains(ObjectId(id)), "resident {id} displaced");
        }
    }

    #[test]
    fn protected_admission_admits_into_free_space() {
        let config = LfoConfig {
            design: PolicyDesign::ProtectedAdmission,
            ..Default::default()
        };
        let mut c = LfoCache::new(10_000, config);
        c.install_model(small_object_model());
        assert_eq!(
            c.handle(&req(0, 1, 400)),
            RequestOutcome::Miss { admitted: true }
        );
    }

    #[test]
    fn density_ranking_prefers_small_objects_under_ohr() {
        use cdn_trace::CostModel;
        let config = LfoConfig {
            design: PolicyDesign::DensityRanked,
            cost_model: CostModel::ObjectHitRatio,
            ..Default::default()
        };
        let mut c = LfoCache::new(600, config);
        c.install_model(small_object_model());
        // Small and mid-size object, similar likelihood class; under OHR
        // density ranking the big one has far lower priority per byte.
        c.handle(&req(0, 1, 400));
        c.handle(&req(1, 2, 100));
        c.handle(&req(2, 3, 150)); // needs 50 bytes: evicts the 400B object
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
    }

    #[test]
    fn cutoff_can_be_retuned() {
        let mut c = LfoCache::new(100, LfoConfig::default());
        assert_eq!(c.cutoff(), 0.5);
        c.set_cutoff(0.65);
        assert_eq!(c.cutoff(), 0.65);
    }

    #[test]
    fn slot_publication_rolls_out_between_requests() {
        let slot = ModelSlot::new();
        let mut c = LfoCache::with_slot(10_000, LfoConfig::default(), slot.clone());
        assert!(!c.has_model());
        // LRU fallback admits the large object.
        assert_eq!(
            c.handle(&req(0, 1, 900)),
            RequestOutcome::Miss { admitted: true }
        );
        // Publish through the shared handle (in the staged pipeline this
        // happens on the trainer thread).
        slot.publish(small_object_model(), 0.5);
        assert!(c.has_model());
        // The very next request is scored by the published model.
        assert_eq!(
            c.handle(&req(1, 2, 900)),
            RequestOutcome::Miss { admitted: false }
        );
    }

    #[test]
    fn slot_versions_and_prepublished_cutoff() {
        let slot = ModelSlot::new();
        assert_eq!(slot.version(), 0);
        slot.publish_cutoff(0.7);
        assert_eq!(slot.version(), 1);
        // The constructor syncs state already in the slot.
        let mut c = LfoCache::with_slot(100, LfoConfig::default(), slot.clone());
        assert_eq!(c.cutoff(), 0.7);
        c.set_cutoff(0.6);
        assert_eq!(slot.version(), 2);
        assert_eq!(c.cutoff(), 0.6);
    }

    #[test]
    fn feature_sampling_collects_and_drains() {
        let mut c = LfoCache::new(1_000, LfoConfig::default());
        assert!(c.take_feature_samples().is_empty());
        c.enable_feature_sampling(2);
        for i in 0..10u64 {
            c.handle(&req(i, i, 50));
        }
        let samples = c.take_feature_samples();
        assert_eq!(samples.len(), 5, "every 2nd of 10 requests");
        assert!(samples.iter().all(|r| r.len() == samples[0].len()));
        // Draining leaves the buffer empty for the next window.
        assert!(c.take_feature_samples().is_empty());
        c.enable_feature_sampling(0);
        c.handle(&req(10, 10, 50));
        assert!(c.take_feature_samples().is_empty(), "sampling disabled");
    }

    #[test]
    fn oversized_objects_bypass() {
        let mut c = LfoCache::new(100, LfoConfig::default());
        assert_eq!(
            c.handle(&req(0, 1, 200)),
            RequestOutcome::Miss { admitted: false }
        );
    }
}
