//! The LFO caching policy (paper §2.4).
//!
//! "For every request, we call the LFO predictor to estimate how likely OPT
//! is going to cache the object. If the confidence is ≥ .5, we admit the
//! object into the cache. Furthermore, we rank objects in the cache by
//! their predicted likelihood. If we need to evict an object, we evict the
//! one with the smallest predicted likelihood. Finally, we re-evaluate the
//! likelihood of an object when it is requested again. So, it may happen
//! (unlike in existing systems), that a cache hit leads to the eviction of
//! the hit object (which matches OPT frequently doing the same)."
//!
//! Until the first model is installed, the policy falls back to LRU
//! (admit everything; recency as the likelihood), so the pipeline's first
//! window behaves like a plain cache while LFO collects its first OPT
//! labels.
//!
//! Victim selection is pluggable ([`EvictionStrategy`], DESIGN.md §14):
//! the reference path keeps a fully ordered `BTreeSet` queue (exact
//! minimum, O(log n) reorder per hit); sample-K scores K seeded-random
//! residents and evicts their minimum, making the hit path a pure O(1)
//! map update with no queue and no frontier-board traffic.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cdn_trace::{ObjectId, Request};
use gbdt::{BinMap, FlatModel, Model, Predicate, QuantizedModel};

use cdn_cache::cache::{CachePolicy, RequestOutcome};

use crate::config::{EvictionStrategy, LfoConfig, PolicyDesign};
use crate::features::FeatureTracker;
use crate::guardrail::{Guardrail, GuardrailConfig, GuardrailSnapshot};
use crate::sketchpool::SharedDoorkeeper;

/// The repo's standard 64-bit mixer (same constants as `lfo::shard`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Index of the free-bytes feature in the tracker's row layout
/// (`[size, cost, free, gap_1..]`) — the feature shard invariants prune
/// against.
pub const FREE_FEATURE: usize = 2;

/// A model compiled for serving: the object that trains ([`Model`]) is not
/// the object that serves. Built once per publish inside [`ModelSlot`] so
/// every subscriber (each shard of a sharded cache) shares one copy of each
/// layout instead of recompiling per shard.
pub struct CompiledArtifact {
    /// The training-side ensemble (recursive walk; the compatibility path).
    pub model: Arc<Model>,
    /// Flat SoA layout, bit-equal to the recursive walk.
    pub flat: Arc<FlatModel>,
    /// Quantized integer-compare layout, present only when the publish
    /// carried the frozen training [`BinMap`] — absent, serving stays on
    /// the flat walk (no silent requantization against a mismatched grid).
    pub quantized: Option<Arc<QuantizedModel>>,
}

/// A shared publication point for trained models and admission cutoffs.
///
/// The staged pipeline's trainer publishes through a clone of the slot while
/// the cache serves requests on another thread; the cache notices the bumped
/// version on its next request and refreshes its local `Arc<Model>` — an
/// atomic rollout without locking the serving hot path (the fast path is a
/// single atomic load).
#[derive(Clone, Default)]
pub struct ModelSlot {
    inner: Arc<SlotInner>,
}

#[derive(Default)]
struct SlotInner {
    version: AtomicU64,
    state: Mutex<SlotState>,
}

#[derive(Clone, Default)]
struct SlotState {
    /// The compiled serving layouts, built once per publish so every
    /// subscriber (each shard of a sharded cache) shares one copy.
    artifact: Option<Arc<CompiledArtifact>>,
    cutoff: Option<f64>,
    /// Predicate-pruned variants of the published quantized model, keyed by
    /// `(feature, bound bits)`. Pooled shards present identical free-bytes
    /// bounds, so the whole fleet shares one pruned copy; cleared on every
    /// publish (a pruned variant is only valid for the model it came from).
    pruned: HashMap<(usize, u64), Arc<QuantizedModel>>,
}

impl ModelSlot {
    /// An empty slot (no model, no cutoff override).
    pub fn new() -> Self {
        ModelSlot::default()
    }

    /// Publishes a model and its admission cutoff as one rollout event.
    /// The flat serving layout is built here, once, not per subscriber;
    /// no quantized layout is compiled (see [`ModelSlot::publish_compiled`]).
    pub fn publish(&self, model: Arc<Model>, cutoff: f64) {
        self.publish_compiled(model, cutoff, None);
    }

    /// Publishes a model and cutoff, compiling the full serving artifact.
    /// When `bin_map` is the frozen grid the model was trained against, the
    /// quantized integer-compare layout is compiled here — once, at publish
    /// time — and every subscriber serves through it. A `None` or
    /// feature-count-mismatched map publishes flat-only (the caller is
    /// responsible for fingerprint gating; see `LfoArtifact::publish_to`).
    pub fn publish_compiled(&self, model: Arc<Model>, cutoff: f64, bin_map: Option<&BinMap>) {
        let flat = Arc::new(model.flatten());
        let quantized = bin_map
            .filter(|map| map.num_features() == model.num_features())
            .map(|map| Arc::new(model.quantize(map)));
        let artifact = Arc::new(CompiledArtifact {
            model,
            flat,
            quantized,
        });
        let mut state = self.inner.state.lock().expect("slot lock poisoned");
        state.artifact = Some(artifact);
        state.cutoff = Some(cutoff);
        state.pruned.clear();
        self.inner.version.fetch_add(1, Ordering::Release);
    }

    /// Publishes a model, leaving the cutoff as previously published.
    pub fn publish_model(&self, model: Arc<Model>) {
        let flat = Arc::new(model.flatten());
        let artifact = Arc::new(CompiledArtifact {
            model,
            flat,
            quantized: None,
        });
        let mut state = self.inner.state.lock().expect("slot lock poisoned");
        state.artifact = Some(artifact);
        state.pruned.clear();
        self.inner.version.fetch_add(1, Ordering::Release);
    }

    /// Publishes a cutoff, leaving the model as previously published.
    pub fn publish_cutoff(&self, cutoff: f64) {
        let mut state = self.inner.state.lock().expect("slot lock poisoned");
        state.cutoff = Some(cutoff);
        self.inner.version.fetch_add(1, Ordering::Release);
    }

    /// The current publication version (bumped on every publish).
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// Whether a model has ever been published.
    pub fn has_model(&self) -> bool {
        self.inner
            .state
            .lock()
            .expect("slot lock poisoned")
            .artifact
            .is_some()
    }

    /// The currently published compiled artifact, if any.
    pub fn compiled(&self) -> Option<Arc<CompiledArtifact>> {
        self.inner
            .state
            .lock()
            .expect("slot lock poisoned")
            .artifact
            .clone()
    }

    /// The published quantized model specialized against a shard invariant
    /// `features[free_feature] ∈ [0, free_max]`, memoized so pooled shards
    /// (which all present the pool's capacity as their bound) share one
    /// pruned copy. `None` when the current publish carries no quantized
    /// layout. The memo is cleared on every publish.
    pub fn pruned_for(&self, free_feature: usize, free_max: f64) -> Option<Arc<QuantizedModel>> {
        let mut state = self.inner.state.lock().expect("slot lock poisoned");
        let quant = state.artifact.as_ref()?.quantized.clone()?;
        let key = (free_feature, free_max.to_bits());
        if let Some(pruned) = state.pruned.get(&key) {
            return Some(pruned.clone());
        }
        let pruned = Arc::new(quant.prune(&[Predicate::range(free_feature, 0.0, free_max as f32)]));
        state.pruned.insert(key, pruned.clone());
        Some(pruned)
    }

    /// A consistent (version, compiled artifact, cutoff) snapshot.
    fn snapshot(&self) -> (u64, Option<Arc<CompiledArtifact>>, Option<f64>) {
        let state = self.inner.state.lock().expect("slot lock poisoned");
        let version = self.inner.version.load(Ordering::Acquire);
        (version, state.artifact.clone(), state.cutoff)
    }
}

/// A fleet-wide byte pool shared by the shards of a sharded cache
/// (memcached-style: the object *index* is partitioned, the memory is
/// not). Every member adds its admissions and subtracts its evictions, so
/// `capacity − used` is the same global free-bytes signal an unsharded
/// cache would present to the model, and the pool's budget — not the
/// shard's — decides when eviction is needed.
///
/// The pool also carries a **frontier board**: each member publishes the
/// priority of its weakest resident (its local eviction frontier) after
/// every queue mutation. When the pool needs bytes back, only members
/// whose frontier is within [`FRONTIER_SLACK`] of the *global* minimum
/// evict; everyone else defers, leaving a transient overshoot that the
/// first near-frontier member to see traffic reclaims. That approximates
/// the unsharded cache's victim selection (always the global minimum)
/// without any cross-thread eviction — the board is one relaxed atomic
/// store per queue mutation, read at eviction time only.
#[derive(Clone)]
pub struct SharedOccupancy {
    /// Total byte capacity of the pool.
    capacity: u64,
    /// Bytes resident across all member caches.
    used: Arc<AtomicU64>,
    /// Per-member eviction-frontier priorities as `f64::to_bits` (monotone
    /// for the nonnegative priorities the policy produces); `u64::MAX`
    /// means the member holds nothing.
    frontiers: Arc<Vec<AtomicU64>>,
}

impl SharedOccupancy {
    /// A fresh pool of `capacity` total bytes shared by `members` caches.
    pub fn new(capacity: u64, members: usize) -> Self {
        SharedOccupancy {
            capacity,
            used: Arc::new(AtomicU64::new(0)),
            frontiers: Arc::new(
                (0..members.max(1))
                    .map(|_| AtomicU64::new(u64::MAX))
                    .collect(),
            ),
        }
    }

    /// The pool's total byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently resident across all members.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// The pool-wide free bytes right now.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used())
    }

    fn add(&self, bytes: u64) {
        self.used.fetch_add(bytes, Ordering::Relaxed);
    }

    fn sub(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    fn set_frontier(&self, member: usize, bits: u64) {
        self.frontiers[member].store(bits, Ordering::Relaxed);
    }

    /// The lowest frontier priority on the board (`+inf` when every member
    /// is empty).
    fn min_frontier(&self) -> f64 {
        self.frontiers.iter().fold(f64::INFINITY, |min, f| {
            let bits = f.load(Ordering::Relaxed);
            if bits == u64::MAX {
                min
            } else {
                min.min(f64::from_bits(bits))
            }
        })
    }
}

/// How far above the pool's global minimum frontier a member's own
/// frontier may sit while still evicting for the pool. Zero would force
/// every reclaim through the single member holding the exact minimum
/// (overshoot then lives until *that* member sees traffic); a small slack
/// lets any member whose weakest resident is nearly as weak reclaim
/// immediately, at the cost of victims up to this much likelihood above
/// the unsharded cache's choice.
const FRONTIER_SLACK: f64 = 0.20;

/// Priority key in the eviction queue (ordered ascending: victim first).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Priority(f64);

impl Eq for Priority {}
impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    priority: Priority,
    tiebreak: u64,
    size: u64,
    /// This object's position in the sample-K slots vector (unused —
    /// always 0 — under the exact queue).
    slot: usize,
}

/// The eviction index behind [`EvictionStrategy`] (DESIGN.md §14).
enum EvictIndex {
    /// Fully ordered priority queue: exact minimum, O(log n) per mutation.
    Exact(BTreeSet<(Priority, u64, ObjectId)>),
    /// Sample-K: a flat resident vector sampled at eviction time. Hits
    /// never touch it; insert is a push, removal a swap_remove.
    Sampled {
        slots: Vec<ObjectId>,
        k: usize,
        /// Counter state of the splitmix64 sampling stream.
        rng: u64,
    },
}

impl EvictIndex {
    fn for_strategy(strategy: EvictionStrategy) -> Self {
        match strategy {
            EvictionStrategy::ExactQueue => EvictIndex::Exact(BTreeSet::new()),
            EvictionStrategy::SampleK { k, seed } => EvictIndex::Sampled {
                slots: Vec::new(),
                k: k.max(1),
                rng: seed,
            },
        }
    }
}

/// The LFO cache: confidence-ranked admission and eviction.
pub struct LfoCache {
    capacity: u64,
    used: u64,
    config: LfoConfig,
    model: Option<Arc<Model>>,
    /// Flattened serving layout of `model` (same publication); the fallback
    /// hot path scores with this when no quantized layout was published.
    flat: Option<Arc<FlatModel>>,
    /// Quantized serving engine — the published quantized layout pruned
    /// against this cache's free-bytes invariant (`free ∈ [0, bound]`).
    /// Preferred over `flat` when present; refreshed on every publish and
    /// whenever the bound changes (`join_pool`, `set_feature_free_scale`).
    quantized: Option<Arc<QuantizedModel>>,
    slot: ModelSlot,
    slot_seen: u64,
    tracker: FeatureTracker,
    /// Reusable feature-row buffer: the serving hot path performs no
    /// per-request heap allocation (sampling clones out of it only when the
    /// stride fires).
    scratch: Vec<f32>,
    /// Reusable binned-row buffer for the quantized encoder (same
    /// zero-allocation contract as `scratch`).
    bin_scratch: Vec<u16>,
    /// Multiplier applied to the free-bytes feature before scoring (not to
    /// the actual accounting). See [`LfoCache::set_feature_free_scale`].
    free_scale: u64,
    /// Fleet-wide occupancy the free-bytes feature, admission budget, and
    /// eviction coordination are derived from when shards share one pool.
    /// See [`LfoCache::join_pool`].
    shared: Option<SharedOccupancy>,
    /// This cache's slot on the pool's frontier board (0 when unpooled).
    member: usize,
    index: EvictIndex,
    entries: HashMap<ObjectId, Entry>,
    tick: u64,
    /// Sampling stride for live feature rows (0 = sampling off).
    sample_every: usize,
    /// Sampled live feature rows since the last
    /// [`LfoCache::take_feature_samples`] — the drift gate's view of the
    /// serving-side distribution.
    samples: Vec<Vec<f32>>,
    /// Count of hits whose re-scoring dropped the object below every other
    /// resident (the paper's "a hit may evict the hit object" events are a
    /// subset of these).
    pub rescored_to_bottom: u64,
    /// Objects evicted over the cache's lifetime.
    pub evictions: u64,
    /// Runtime learned-vs-LRU guardrail (DESIGN.md §13); absent by
    /// default, in which case the serving path is untouched.
    guardrail: Option<Guardrail>,
}

impl LfoCache {
    /// Creates an LFO cache of `capacity` bytes with no model installed
    /// (LRU fallback until [`LfoCache::install_model`] is called).
    pub fn new(capacity: u64, config: LfoConfig) -> Self {
        LfoCache::with_slot(capacity, config, ModelSlot::new())
    }

    /// Creates an LFO cache attached to an externally shared [`ModelSlot`];
    /// models published through any clone of the slot (e.g. from a trainer
    /// thread) roll out on the cache's next request.
    pub fn with_slot(capacity: u64, config: LfoConfig, slot: ModelSlot) -> Self {
        let tracker = config.tracker();
        let index = EvictIndex::for_strategy(config.eviction_strategy());
        let mut cache = LfoCache {
            capacity,
            used: 0,
            config,
            model: None,
            flat: None,
            quantized: None,
            slot,
            slot_seen: 0,
            tracker,
            scratch: Vec::new(),
            bin_scratch: Vec::new(),
            free_scale: 1,
            shared: None,
            member: 0,
            index,
            entries: HashMap::new(),
            tick: 0,
            sample_every: 0,
            samples: Vec::new(),
            rescored_to_bottom: 0,
            evictions: 0,
            guardrail: None,
        };
        cache.sync_slot();
        cache
    }

    /// The publication slot this cache refreshes from.
    pub fn slot(&self) -> &ModelSlot {
        &self.slot
    }

    /// Installs (or replaces) the trained model; subsequent requests are
    /// scored with it. Existing residents keep their old priorities until
    /// re-requested, exactly like a production rollout would.
    pub fn install_model(&mut self, model: Arc<Model>) {
        self.slot.publish_model(model);
        self.sync_slot();
    }

    /// Whether a model is installed (directly or via the shared slot).
    pub fn has_model(&self) -> bool {
        self.slot.has_model()
    }

    /// Updates the admission cutoff (used by per-window cutoff tuning).
    pub fn set_cutoff(&mut self, cutoff: f64) {
        self.slot.publish_cutoff(cutoff);
        self.sync_slot();
    }

    /// Pulls the latest published (model, cutoff) out of the slot if its
    /// version moved. The fast path — no new publication — is one atomic
    /// load.
    fn sync_slot(&mut self) {
        if self.slot.version() == self.slot_seen {
            return;
        }
        let (version, artifact, cutoff) = self.slot.snapshot();
        if let Some(artifact) = artifact {
            self.model = Some(artifact.model.clone());
            self.flat = Some(artifact.flat.clone());
            self.refresh_engine();
        }
        if let Some(cutoff) = cutoff {
            self.config.cutoff = cutoff;
        }
        self.slot_seen = version;
    }

    /// The free-bytes feature never exceeds this bound for this cache: the
    /// pool's capacity when pooled (the feature is `pool.free()`), else this
    /// cache's capacity times the feature scale. Values presented to the
    /// model are monotone f32 roundings of integers ≤ the bound, so a
    /// predicate on `[0, bound]` is always satisfied — pruning is legal.
    fn free_feature_bound(&self) -> f64 {
        match &self.shared {
            Some(pool) => pool.capacity() as f64,
            None => self.capacity as f64 * self.free_scale as f64,
        }
    }

    /// Re-derives the quantized serving engine: the published quantized
    /// layout pruned against this cache's current free-bytes bound (shared
    /// across shards with the same bound via the slot's memo). Called after
    /// every publish and whenever the bound changes.
    fn refresh_engine(&mut self) {
        self.quantized = self
            .slot
            .pruned_for(FREE_FEATURE, self.free_feature_bound());
    }

    /// The inference engine the next request will be scored through.
    pub fn engine_label(&self) -> &'static str {
        if self.quantized.is_some() {
            "quantized+pruned"
        } else if self.flat.is_some() {
            "flat"
        } else if self.model.is_some() {
            "recursive"
        } else {
            "lru"
        }
    }

    /// The slot version this cache last synced to — in a sharded cache,
    /// equal across shards exactly when a rollout has reached all of them.
    pub fn model_version(&self) -> u64 {
        self.slot_seen
    }

    /// Scales the free-bytes *feature* presented to the model (cache
    /// accounting is untouched). A shard of a hash-partitioned cache holds
    /// `1/N` of the fleet's capacity, but the model is trained against the
    /// global cache's free bytes; without correction every shard looks
    /// nearly full to the model and admissions collapse. Presenting
    /// `free × N` restores the feature distribution the model was trained
    /// on. Defaults to 1 (a standalone cache reports its own free bytes).
    pub fn set_feature_free_scale(&mut self, scale: u64) {
        self.free_scale = scale.max(1);
        // The free-bytes bound moved: the pruned engine must match it.
        self.refresh_engine();
    }

    /// Joins a fleet-wide byte pool: the free-bytes feature, the admission
    /// budget, and the eviction trigger all come from the shared
    /// [`SharedOccupancy`] instead of this cache's own accounting (which
    /// keeps counting this cache's residents). Two failure modes of hard
    /// per-shard budgets disappear:
    ///
    /// - an object larger than `capacity/N` (but not than the fleet) stays
    ///   cacheable — the index is partitioned, the memory is not;
    /// - the model's free-bytes feedback stays on the trained trajectory.
    ///   Likelihoods *rise* as free bytes shrink (OPT's cache is full for
    ///   most of the training window), so a shard fed only its own scaled
    ///   free can latch empty: it never fills, and the model keeps
    ///   declining admission.
    ///
    /// Victim selection is coordinated through the pool's frontier board:
    /// this member evicts only while it owns the globally weakest resident,
    /// deferring otherwise so the owning member reclaims the overshoot on
    /// its next request — the same victims the unsharded cache would pick,
    /// without cross-thread eviction. The cost is schedule-exact
    /// reproducibility (the pool's value at a given request depends on the
    /// other members' progress). This cache's `capacity` should equal the
    /// pool's; `member` is this cache's slot on the frontier board.
    pub fn join_pool(&mut self, pool: SharedOccupancy, member: usize) {
        debug_assert_eq!(self.used, 0, "join_pool before serving");
        self.member = member;
        self.shared = Some(pool);
        // Decorrelate the members' sampling streams (member 0 keeps the
        // configured seed, so a 1-shard pool samples like an unsharded
        // cache).
        if member > 0 {
            if let EvictIndex::Sampled { rng, .. } = &mut self.index {
                *rng ^= splitmix64(member as u64);
            }
        }
        // The free-bytes bound is now the pool's capacity: re-prune.
        self.refresh_engine();
    }

    /// Joins a fleet-shared doorkeeper pool (DESIGN.md §16): the feature
    /// tracker is rebuilt in shared mode, reading and CAS-advancing one
    /// fleet-wide sketch and parking promoted objects on this member's
    /// stripe of the shared GCLOCK ring, instead of minting a private
    /// sketch + ring per cache — fleet doorkeeper metadata scales with the
    /// budget, not budget × shards, and shards share first-sighting
    /// evidence. With one stripe the shared tracker is decision-identical
    /// to the private bounded tracker (proptest-enforced in
    /// `tests/bounded_state.rs`). An attached guardrail borrows the same
    /// doorkeeper, so its ghosts stop minting entries for objects the
    /// doorkeeper has not cleared. Like [`Self::join_pool`], call before
    /// serving — the rebuilt tracker starts empty.
    pub fn join_sketch_pool(&mut self, pool: Arc<SharedDoorkeeper>, stripe: usize) {
        debug_assert_eq!(self.tick, 0, "join_sketch_pool before serving");
        self.tracker = FeatureTracker::with_shared_pool(
            self.config.gaps(),
            self.config.cost_model,
            pool,
            stripe,
        );
        if let Some(guard) = self.guardrail.as_mut() {
            guard.set_borrow_doorkeeper(true);
        }
    }

    /// Whether admitting `incoming` bytes would exceed the byte budget —
    /// the shared pool's if this cache joined one, else this cache's own.
    fn over_budget(&self, incoming: u64) -> bool {
        match &self.shared {
            Some(pool) => pool.used().saturating_add(incoming) > pool.capacity(),
            None => self.used + incoming > self.capacity,
        }
    }

    /// Current admission cutoff.
    pub fn cutoff(&self) -> f64 {
        self.config.cutoff
    }

    /// Eviction priority for an object under the configured design:
    /// raw likelihood for [`PolicyDesign::Paper`] and
    /// [`PolicyDesign::ProtectedAdmission`], expected saved miss cost per
    /// byte (`likelihood × C/S`) for [`PolicyDesign::DensityRanked`].
    fn eviction_priority(&self, likelihood: f64, size: u64) -> f64 {
        match self.config.design {
            PolicyDesign::Paper | PolicyDesign::ProtectedAdmission => likelihood,
            PolicyDesign::DensityRanked => {
                likelihood * self.config.cost_model.cost(size) as f64 / size as f64
            }
        }
    }

    /// The feature tracker (shared state with the training pipeline).
    pub fn tracker_mut(&mut self) -> &mut FeatureTracker {
        &mut self.tracker
    }

    /// Read-only view of the feature tracker.
    pub fn tracker(&self) -> &FeatureTracker {
        &self.tracker
    }

    /// Approximate heap bytes of the serving model layouts this cache holds
    /// references to (flat + quantized; the Arcs are shared across shards,
    /// so a sharded report should count this once, not per shard).
    pub fn model_footprint_bytes(&self) -> usize {
        self.flat.as_ref().map_or(0, |f| f.approximate_bytes())
            + self.quantized.as_ref().map_or(0, |q| q.approximate_bytes())
    }

    /// Approximate heap bytes of the admission/eviction index: one
    /// `HashMap` entry (key + [`Entry`] + bucket overhead) per resident,
    /// plus one `BTreeSet` key (exact queue) or one slot-vector id
    /// (sample-K) per resident.
    pub fn approximate_index_bytes(&self) -> usize {
        const MAP_ENTRY: usize = std::mem::size_of::<(ObjectId, Entry)>() + 16;
        match &self.index {
            EvictIndex::Exact(queue) => {
                const QUEUE_KEY: usize = std::mem::size_of::<(Priority, u64, ObjectId)>() + 8;
                self.entries.len() * MAP_ENTRY + queue.len() * QUEUE_KEY
            }
            EvictIndex::Sampled { slots, .. } => self.entries.len() * MAP_ENTRY + slots.len() * 8,
        }
    }

    /// Short label of the active eviction strategy (`"exact"` or
    /// `"sample<k>"`), for experiment rows.
    pub fn eviction_label(&self) -> String {
        match &self.index {
            EvictIndex::Exact(_) => "exact".to_string(),
            EvictIndex::Sampled { k, .. } => format!("sample{k}"),
        }
    }

    /// Approximate per-object metadata bytes the serving path keeps warm:
    /// feature-tracker history plus the admission/eviction index (model
    /// footprint excluded — it is shared, not per-object; see
    /// [`LfoCache::model_footprint_bytes`]).
    pub fn metadata_bytes(&self) -> usize {
        self.tracker.approximate_bytes() + self.approximate_index_bytes()
    }

    /// Starts sampling every `every`-th request's feature row (0 disables).
    /// The staged pipeline's drift gate uses this to compare the live
    /// serving distribution against each candidate's training window.
    pub fn enable_feature_sampling(&mut self, every: usize) {
        self.sample_every = every;
        self.samples.clear();
    }

    /// Takes the feature rows sampled since the last call (typically one
    /// serving window's worth), leaving the buffer empty.
    pub fn take_feature_samples(&mut self) -> Vec<Vec<f32>> {
        std::mem::take(&mut self.samples)
    }

    /// Predicted likelihood that OPT would cache this request, or `None`
    /// while no model is installed. Scored through the pruned quantized
    /// engine when the publish carried the training grid (the row is
    /// encoded to u16 bins in a reusable scratch buffer — no float compares
    /// and no allocation on the hot path), else through the flat SoA layout
    /// (bit-equal to `Model::predict_proba`).
    fn score(&mut self, features: &[f32]) -> Option<f64> {
        if let Some(quant) = &self.quantized {
            let mut bins = std::mem::take(&mut self.bin_scratch);
            quant.encode_row_into(features, &mut bins);
            let proba = quant.predict_proba_binned(&bins);
            self.bin_scratch = bins;
            return Some(proba);
        }
        match (&self.flat, &self.model) {
            (Some(flat), _) => Some(flat.predict_proba(features)),
            (None, Some(model)) => Some(model.predict_proba(features)),
            (None, None) => None,
        }
    }

    /// Inserts a new resident into the eviction index and entry map.
    fn insert_resident(&mut self, object: ObjectId, mut entry: Entry) {
        match &mut self.index {
            EvictIndex::Exact(queue) => {
                queue.insert((entry.priority, entry.tiebreak, object));
            }
            EvictIndex::Sampled { slots, .. } => {
                entry.slot = slots.len();
                slots.push(object);
            }
        }
        self.entries.insert(object, entry);
        self.publish_frontier();
    }

    /// Removes `victim` from both index and entry map, releasing its bytes.
    fn remove_resident(&mut self, victim: ObjectId) {
        let entry = self.entries.remove(&victim).expect("entry exists");
        match &mut self.index {
            EvictIndex::Exact(queue) => {
                let removed = queue.remove(&(entry.priority, entry.tiebreak, victim));
                debug_assert!(removed, "queue out of sync");
            }
            EvictIndex::Sampled { slots, .. } => {
                slots.swap_remove(entry.slot);
                if let Some(&moved) = slots.get(entry.slot) {
                    self.entries
                        .get_mut(&moved)
                        .expect("moved entry exists")
                        .slot = entry.slot;
                }
            }
        }
        self.used -= entry.size;
        if let Some(shared) = &self.shared {
            shared.sub(entry.size);
        }
        self.evictions += 1;
        self.publish_frontier();
    }

    /// The eviction-candidate key: the exact queue's global minimum, or the
    /// minimum of a fresh K-sample under sample-K. When `k >= residents`
    /// the sample degenerates to a full scan with zero RNG draws, which
    /// picks the identical `(priority, tiebreak, object)` minimum the
    /// exact queue would — the decision-identity the proptests pin down.
    fn weakest_key(&mut self) -> Option<(Priority, u64, ObjectId)> {
        match &mut self.index {
            EvictIndex::Exact(queue) => queue.iter().next().copied(),
            EvictIndex::Sampled { slots, k, rng } => {
                let len = slots.len();
                if len == 0 {
                    return None;
                }
                let entries = &self.entries;
                let key = |object: ObjectId| {
                    let e = &entries[&object];
                    (e.priority, e.tiebreak, object)
                };
                if *k >= len {
                    return slots.iter().map(|&o| key(o)).min();
                }
                let mut best: Option<(Priority, u64, ObjectId)> = None;
                for _ in 0..*k {
                    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let i = (splitmix64(*rng) as usize) % len;
                    let candidate = key(slots[i]);
                    if best.is_none_or(|b| candidate < b) {
                        best = Some(candidate);
                    }
                }
                best
            }
        }
    }

    /// Evicts the weakest resident (exact minimum or sample-K minimum).
    fn evict_min(&mut self) {
        let (_, _, victim) = self.weakest_key().expect("nonempty");
        self.remove_resident(victim);
    }

    /// Posts this cache's eviction frontier (the priority of its weakest
    /// resident) to the pool's frontier board. Priorities are nonnegative,
    /// so their bit patterns order like the values. Sample-K caches keep
    /// no ordered frontier and never post: their pooled members always
    /// reclaim locally (see [`LfoCache::near_global_frontier`]).
    fn publish_frontier(&self) {
        let Some(pool) = &self.shared else { return };
        let EvictIndex::Exact(queue) = &self.index else {
            return;
        };
        let bits = match queue.iter().next() {
            Some(&(Priority(p), _, _)) => {
                debug_assert!(p >= 0.0, "priorities must stay nonnegative");
                p.to_bits()
            }
            None => u64::MAX,
        };
        pool.set_frontier(self.member, bits);
    }

    /// Whether this member's weakest resident is within [`FRONTIER_SLACK`]
    /// of the globally weakest on the pool's frontier board (trivially true
    /// when unpooled, or when this member IS the global minimum). Only
    /// near-frontier members evict for the pool: victims stay within the
    /// slack of what the unsharded cache would have picked, while any
    /// near-frontier member — not just the exact owner — can reclaim an
    /// overshoot as soon as it sees traffic. Sample-K members always
    /// answer true — without an ordered queue there is no cheap frontier,
    /// so each member reclaims pool overshoot with its own sampled victim
    /// (the board never enters the hot path, which is the point).
    fn near_global_frontier(&self) -> bool {
        let (Some(pool), EvictIndex::Exact(queue)) = (&self.shared, &self.index) else {
            return true;
        };
        match queue.iter().next() {
            Some(&(Priority(p), _, _)) => p <= pool.min_frontier() + FRONTIER_SLACK,
            None => true,
        }
    }

    /// Cooperative reclaim: if the pool is over budget (another member
    /// admitted and deferred eviction to the frontier owner), evict while
    /// this member owns the global frontier. Runs at the top of every
    /// request, so overshoot lives only until the owning shard's next
    /// request.
    fn trim_pool(&mut self) {
        loop {
            let over = match &self.shared {
                Some(pool) => pool.used() > pool.capacity(),
                None => return,
            };
            if !over || self.entries.is_empty() || !self.near_global_frontier() {
                return;
            }
            self.evict_min();
        }
    }

    /// Attaches the runtime learned-vs-LRU guardrail (DESIGN.md §13) with
    /// ghost capacity equal to this cache's own — correct for a standalone
    /// cache that sees the whole stream.
    pub fn enable_guardrail(&mut self, config: GuardrailConfig) {
        self.enable_guardrail_scoped(config, self.capacity);
    }

    /// Attaches the guardrail with an explicit shadow-capacity basis: a
    /// pooled shard's `capacity` field equals the whole pool's, but it
    /// serves only `1/N` of the stream, so its ghosts must model
    /// `pool capacity / N` for the shadow-LRU baseline to be comparable.
    ///
    /// A cache evicting by sample-K passes that K to its learned ghost
    /// (unless the config pins one explicitly), so probation is judged
    /// under the eviction discipline this cache actually serves with.
    pub fn enable_guardrail_scoped(&mut self, mut config: GuardrailConfig, shadow_capacity: u64) {
        if config.ghost_sample_k.is_none() {
            if let EvictionStrategy::SampleK { k, .. } = self.config.eviction_strategy() {
                config.ghost_sample_k = Some(u32::try_from(k).unwrap_or(u32::MAX));
            }
        }
        let mut guard = Guardrail::new(config, shadow_capacity);
        // A cache on a shared doorkeeper lends it to the guardrail too
        // (the other attachment order is handled by `join_sketch_pool`).
        if self.tracker.shared_pool().is_some() {
            guard.set_borrow_doorkeeper(true);
        }
        self.guardrail = Some(guard);
    }

    /// Snapshot of the attached guardrail's state, or `None` when no
    /// guardrail is attached.
    pub fn guardrail(&self) -> Option<GuardrailSnapshot> {
        self.guardrail.as_ref().map(Guardrail::snapshot)
    }

    /// Trips fired since attachment, 0 without a guardrail (convenience
    /// for the per-window delta accounting in the pipeline collector).
    pub fn guardrail_trips(&self) -> u64 {
        self.guardrail.as_ref().map_or(0, |g| g.snapshot().trips)
    }

    /// The serving decision for one request, `likelihood` already resolved
    /// (guardrail-forced requests are handed the recency likelihood, so a
    /// forced cache is byte-for-byte the no-model LRU fallback). Split out
    /// of [`CachePolicy::handle`] so the guardrail can observe the outcome
    /// at a single point.
    fn serve_decision(
        &mut self,
        request: &Request,
        likelihood: f64,
        forced: bool,
    ) -> RequestOutcome {
        if let Some(&entry) = self.entries.get(&request.object) {
            // Re-evaluate on every hit; the hit object may become the
            // eviction frontier (and even be evicted by a later admission).
            let updated = Entry {
                priority: Priority(self.eviction_priority(likelihood, entry.size)),
                tiebreak: self.tick,
                size: entry.size,
                slot: entry.slot,
            };
            match &mut self.index {
                EvictIndex::Exact(queue) => {
                    let removed = queue.remove(&(entry.priority, entry.tiebreak, request.object));
                    debug_assert!(removed, "queue out of sync");
                    queue.insert((updated.priority, updated.tiebreak, request.object));
                }
                // Sample-K hit path: the map update below is the whole
                // reorder — no queue, O(1).
                EvictIndex::Sampled { .. } => {}
            }
            self.entries.insert(request.object, updated);
            self.publish_frontier();
            if let EvictIndex::Exact(queue) = &self.index {
                if let Some(&(_, _, frontier)) = queue.iter().next() {
                    if frontier == request.object {
                        self.rescored_to_bottom += 1;
                    }
                }
            }
            return RequestOutcome::Hit;
        }

        if request.size > self.capacity {
            return RequestOutcome::Miss { admitted: false };
        }
        let priority = self.eviction_priority(likelihood, request.size);
        // A guardrail-forced cache admits everything, like the no-model
        // LRU fallback.
        let admit = if self.model.is_some() && !forced {
            let above_cutoff = likelihood >= self.config.cutoff;
            match self.config.design {
                PolicyDesign::Paper | PolicyDesign::DensityRanked => above_cutoff,
                PolicyDesign::ProtectedAdmission => {
                    // The newcomer may only displace strictly weaker
                    // residents; with room to spare the cutoff decides.
                    // Under sample-K the probe is the same K-sample an
                    // eviction would draw.
                    above_cutoff
                        && (!self.over_budget(request.size)
                            || self
                                .weakest_key()
                                .map(|(Priority(p), _, _)| priority > p)
                                .unwrap_or(true))
                }
            }
        } else {
            true // LRU fallback admits everything
        };
        if !admit {
            return RequestOutcome::Miss { admitted: false };
        }
        while self.over_budget(request.size) {
            if self.entries.is_empty() {
                // Pooled mode only: this member has nothing left to evict;
                // the pool absorbs the transient overshoot and the next
                // admission on a fuller member reclaims it. (Unpooled, an
                // empty queue means used == 0 and the object fits.)
                break;
            }
            if let Some(pool) = &self.shared {
                // The globally weakest resident lives on another member:
                // admit over budget and let that member reclaim the bytes
                // on its next request (trim_pool), evicting the same
                // victim the unsharded cache would have picked. The 2×
                // valve bounds memory if the frontier owner is starved of
                // traffic — past it, evict locally regardless.
                let hard_cap = pool.capacity().saturating_mul(2);
                if !self.near_global_frontier() && pool.used() < hard_cap {
                    break;
                }
            }
            self.evict_min();
        }
        self.insert_resident(
            request.object,
            Entry {
                priority: Priority(priority),
                tiebreak: self.tick,
                size: request.size,
                slot: 0,
            },
        );
        self.used += request.size;
        if let Some(shared) = &self.shared {
            shared.add(request.size);
        }
        RequestOutcome::Miss { admitted: true }
    }
}

impl CachePolicy for LfoCache {
    fn name(&self) -> &'static str {
        "LFO"
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, object: ObjectId) -> bool {
        self.entries.contains_key(&object)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.sync_slot();
        self.trim_pool();
        self.tick += 1;
        let free = match &self.shared {
            Some(shared) => shared.free(),
            None => (self.capacity - self.used).saturating_mul(self.free_scale),
        };
        // Build the feature row into the reusable scratch buffer: zero heap
        // allocation on the hot path (the buffer is moved out and back to
        // satisfy the borrow checker; a move is pointer-sized, not a copy).
        let features = {
            let mut scratch = std::mem::take(&mut self.scratch);
            self.tracker.features_into(request, free, &mut scratch);
            self.tracker.record(request);
            scratch
        };
        if self.sample_every != 0 && self.tick.is_multiple_of(self.sample_every as u64) {
            self.samples.push(features.clone());
        }
        // Likelihood that OPT caches this request; LRU fallback scores by
        // recency, normalized to stay within (0, 1).
        let recency = 1.0 - 1.0 / (1.0 + self.tick as f64);
        let likelihood = self.score(&features).unwrap_or(recency);
        self.scratch = features;

        // A tripped guardrail serves this request as LRU: recency
        // likelihood + admit-everything, exactly the no-model fallback.
        // Without a guardrail (or untripped) this is the identity.
        let forced = self.guardrail.as_ref().is_some_and(Guardrail::forced);
        let serve_likelihood = if forced { recency } else { likelihood };
        let outcome = self.serve_decision(request, serve_likelihood, forced);
        if self.guardrail.is_some() {
            // The learned policy's would-be decision for this request,
            // shadow-scored whether or not it was the one served.
            let admit = self.model.is_none() || likelihood >= self.config.cutoff;
            let priority = self.eviction_priority(likelihood, request.size);
            // `record` above already ran, so exact history exists iff the
            // doorkeeper has cleared this object (first sightings live only
            // in the sketch) — the evidence a borrowing guardrail filters
            // its ghost inserts on. Non-borrowing guardrails skip the
            // history lookup entirely: it is ignored evidence, and the
            // per-request probe costs real benign throughput.
            let past_doorkeeper = !self
                .guardrail
                .as_ref()
                .is_some_and(Guardrail::borrows_doorkeeper)
                || self.tracker.is_tracked(request.object);
            if let Some(guard) = self.guardrail.as_mut() {
                guard.record_shadowed(
                    request,
                    priority,
                    admit,
                    matches!(outcome, RequestOutcome::Hit),
                    past_doorkeeper,
                );
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt::{train, Dataset, GbdtParams};

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    /// Training data for a model that predicts "cache" for small objects
    /// only: (size) → size < 500.
    fn small_object_training_data() -> Dataset {
        let cfg = LfoConfig::default();
        let rows: Vec<Vec<f32>> = (0..400)
            .map(|i| {
                let size = (i % 40) as f32 * 25.0 + 1.0;
                let mut row = vec![size, size, 1000.0];
                row.extend(std::iter::repeat_n(100.0, cfg.num_gaps));
                row
            })
            .collect();
        // Labels: small objects are always cacheable; mid-size objects
        // (200–500) only usually — so their predicted likelihood is
        // strictly between the small objects' and the large objects'.
        let labels: Vec<f32> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let size = r[0];
                if size < 200.0 {
                    1.0
                } else if size < 500.0 {
                    (i % 3 != 0) as u8 as f32
                } else {
                    0.0
                }
            })
            .collect();
        Dataset::from_rows(rows, labels).unwrap()
    }

    fn small_object_model() -> Arc<Model> {
        Arc::new(train(
            &small_object_training_data(),
            &GbdtParams::lfo_paper(),
        ))
    }

    #[test]
    fn falls_back_to_lru_without_model() {
        let mut c = LfoCache::new(30, LfoConfig::default());
        assert!(!c.has_model());
        c.handle(&req(0, 1, 10));
        c.handle(&req(1, 2, 10));
        c.handle(&req(2, 3, 10));
        c.handle(&req(3, 1, 10)); // touch 1
        c.handle(&req(4, 4, 10)); // evict 2 (lowest recency priority)
        assert!(c.contains(ObjectId(1)));
        assert!(!c.contains(ObjectId(2)));
    }

    #[test]
    fn model_gates_admission() {
        let mut c = LfoCache::new(10_000, LfoConfig::default());
        c.install_model(small_object_model());
        let small = c.handle(&req(0, 1, 100));
        let large = c.handle(&req(1, 2, 900));
        assert_eq!(small, RequestOutcome::Miss { admitted: true });
        assert_eq!(large, RequestOutcome::Miss { admitted: false });
    }

    #[test]
    fn evicts_lowest_likelihood_first() {
        let mut c = LfoCache::new(700, LfoConfig::default());
        c.install_model(small_object_model());
        // Admit a mid-size (likelihood lower) and a small (higher).
        c.handle(&req(0, 1, 400)); // low-ish likelihood
        c.handle(&req(1, 2, 100)); // high likelihood
                                   // A new small object forces one eviction: the 400-byte object goes.
        c.handle(&req(2, 3, 300));
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
        assert!(c.contains(ObjectId(3)));
    }

    #[test]
    fn hit_rescoring_can_doom_the_hit_object() {
        let mut c = LfoCache::new(600, LfoConfig::default());
        c.install_model(small_object_model());
        c.handle(&req(0, 1, 450)); // admitted (size < 500)
        c.handle(&req(1, 2, 100));
        // Hit object 1: re-scored. It stays the lowest-likelihood resident,
        // so the next admission evicts it even though it just hit.
        assert!(c.handle(&req(2, 1, 450)).is_hit());
        c.handle(&req(3, 3, 200));
        assert!(
            !c.contains(ObjectId(1)),
            "hit object should have been evicted"
        );
        assert!(c.rescored_to_bottom > 0);
    }

    #[test]
    fn capacity_respected_with_and_without_model() {
        let mut c = LfoCache::new(1_000, LfoConfig::default());
        for i in 0..300u64 {
            c.handle(&req(i, i % 31, 90));
            assert!(c.used() <= c.capacity());
        }
        c.install_model(small_object_model());
        for i in 300..600u64 {
            c.handle(&req(i, i % 31, 90));
            assert!(c.used() <= c.capacity());
        }
    }

    #[test]
    fn protected_admission_never_displaces_stronger_residents() {
        let config = LfoConfig {
            design: PolicyDesign::ProtectedAdmission,
            ..Default::default()
        };
        let mut c = LfoCache::new(600, config);
        c.install_model(small_object_model());
        // Two high-likelihood small objects fill the cache.
        c.handle(&req(0, 1, 150));
        c.handle(&req(1, 2, 150));
        c.handle(&req(2, 3, 150));
        c.handle(&req(3, 4, 150));
        // A mid-size object (weaker likelihood) passes the cutoff but must
        // NOT be admitted: it would displace a stronger resident.
        let out = c.handle(&req(4, 5, 400));
        assert_eq!(out, RequestOutcome::Miss { admitted: false });
        for id in 1..=4u64 {
            assert!(c.contains(ObjectId(id)), "resident {id} displaced");
        }
    }

    #[test]
    fn protected_admission_admits_into_free_space() {
        let config = LfoConfig {
            design: PolicyDesign::ProtectedAdmission,
            ..Default::default()
        };
        let mut c = LfoCache::new(10_000, config);
        c.install_model(small_object_model());
        assert_eq!(
            c.handle(&req(0, 1, 400)),
            RequestOutcome::Miss { admitted: true }
        );
    }

    #[test]
    fn density_ranking_prefers_small_objects_under_ohr() {
        use cdn_trace::CostModel;
        let config = LfoConfig {
            design: PolicyDesign::DensityRanked,
            cost_model: CostModel::ObjectHitRatio,
            ..Default::default()
        };
        let mut c = LfoCache::new(600, config);
        c.install_model(small_object_model());
        // Small and mid-size object, similar likelihood class; under OHR
        // density ranking the big one has far lower priority per byte.
        c.handle(&req(0, 1, 400));
        c.handle(&req(1, 2, 100));
        c.handle(&req(2, 3, 150)); // needs 50 bytes: evicts the 400B object
        assert!(!c.contains(ObjectId(1)));
        assert!(c.contains(ObjectId(2)));
    }

    #[test]
    fn cutoff_can_be_retuned() {
        let mut c = LfoCache::new(100, LfoConfig::default());
        assert_eq!(c.cutoff(), 0.5);
        c.set_cutoff(0.65);
        assert_eq!(c.cutoff(), 0.65);
    }

    #[test]
    fn slot_publication_rolls_out_between_requests() {
        let slot = ModelSlot::new();
        let mut c = LfoCache::with_slot(10_000, LfoConfig::default(), slot.clone());
        assert!(!c.has_model());
        // LRU fallback admits the large object.
        assert_eq!(
            c.handle(&req(0, 1, 900)),
            RequestOutcome::Miss { admitted: true }
        );
        // Publish through the shared handle (in the staged pipeline this
        // happens on the trainer thread).
        slot.publish(small_object_model(), 0.5);
        assert!(c.has_model());
        // The very next request is scored by the published model.
        assert_eq!(
            c.handle(&req(1, 2, 900)),
            RequestOutcome::Miss { admitted: false }
        );
    }

    #[test]
    fn slot_versions_and_prepublished_cutoff() {
        let slot = ModelSlot::new();
        assert_eq!(slot.version(), 0);
        slot.publish_cutoff(0.7);
        assert_eq!(slot.version(), 1);
        // The constructor syncs state already in the slot.
        let mut c = LfoCache::with_slot(100, LfoConfig::default(), slot.clone());
        assert_eq!(c.cutoff(), 0.7);
        c.set_cutoff(0.6);
        assert_eq!(slot.version(), 2);
        assert_eq!(c.cutoff(), 0.6);
    }

    #[test]
    fn feature_sampling_collects_and_drains() {
        let mut c = LfoCache::new(1_000, LfoConfig::default());
        assert!(c.take_feature_samples().is_empty());
        c.enable_feature_sampling(2);
        for i in 0..10u64 {
            c.handle(&req(i, i, 50));
        }
        let samples = c.take_feature_samples();
        assert_eq!(samples.len(), 5, "every 2nd of 10 requests");
        assert!(samples.iter().all(|r| r.len() == samples[0].len()));
        // Draining leaves the buffer empty for the next window.
        assert!(c.take_feature_samples().is_empty());
        c.enable_feature_sampling(0);
        c.handle(&req(10, 10, 50));
        assert!(c.take_feature_samples().is_empty(), "sampling disabled");
    }

    #[test]
    fn free_scale_inflates_the_free_bytes_feature_only() {
        let sample_free = |scale: u64| {
            let mut c = LfoCache::new(1_000, LfoConfig::default());
            c.set_feature_free_scale(scale);
            c.enable_feature_sampling(1);
            c.handle(&req(0, 1, 100));
            assert_eq!(c.used(), 100, "accounting must not be scaled");
            c.take_feature_samples()[0][2]
        };
        assert_eq!(sample_free(1), 1_000.0);
        assert_eq!(sample_free(4), 4_000.0);
        assert_eq!(sample_free(0), 1_000.0, "0 clamps to the identity");
    }

    #[test]
    fn pooled_members_defer_eviction_to_the_frontier_owner() {
        // Two caches share a 600-byte pool. A holds the globally weakest
        // resident (a mid-size object the model half-likes); B holds a
        // strong one. When B admits over budget it must NOT evict its own
        // strong resident — it defers, the pool overshoots transiently,
        // and A reclaims the bytes by evicting its weak resident on its
        // next request.
        let pool = SharedOccupancy::new(600, 2);
        let model = small_object_model();
        let mut a = LfoCache::new(600, LfoConfig::default());
        a.install_model(model.clone());
        a.join_pool(pool.clone(), 0);
        let mut b = LfoCache::new(600, LfoConfig::default());
        b.install_model(model);
        b.join_pool(pool.clone(), 1);

        assert_eq!(
            a.handle(&req(0, 1, 450)), // weak: likelihood ~0.6
            RequestOutcome::Miss { admitted: true }
        );
        b.handle(&req(1, 2, 100)); // strong: likelihood ~1.0
        assert_eq!(pool.used(), 550);

        // B admits another strong object: 650 > 600, but the global
        // frontier (A's weak resident) is more than FRONTIER_SLACK below
        // B's own, so B defers instead of evicting.
        assert_eq!(
            b.handle(&req(2, 3, 100)),
            RequestOutcome::Miss { admitted: true }
        );
        assert_eq!(b.evictions, 0, "B must not evict its stronger residents");
        assert_eq!(pool.used(), 650, "pool overshoots until the owner trims");

        // A's next request (a bypassed oversize probe) trims the pool: A
        // owns the frontier, so it evicts its weak resident.
        assert_eq!(
            a.handle(&req(3, 4, 900)),
            RequestOutcome::Miss { admitted: false }
        );
        assert_eq!(a.evictions, 1);
        assert!(!a.contains(ObjectId(1)));
        assert_eq!(pool.used(), 200);
    }

    #[test]
    fn oversized_objects_bypass() {
        let mut c = LfoCache::new(100, LfoConfig::default());
        assert_eq!(
            c.handle(&req(0, 1, 200)),
            RequestOutcome::Miss { admitted: false }
        );
    }

    #[test]
    fn quantized_publish_serves_identical_decisions() {
        // A publish that carries the training grid serves through the
        // pruned quantized engine; the training grid makes the compile
        // exact, so every admission and eviction matches the flat walk.
        let data = small_object_training_data();
        let params = GbdtParams::lfo_paper();
        let model = Arc::new(train(&data, &params));
        let map = gbdt::BinMap::fit(&data, params.max_bins);

        let drive = |slot: ModelSlot| {
            let mut c = LfoCache::with_slot(700, LfoConfig::default(), slot);
            (0..200u64)
                .map(|i| c.handle(&req(i, i % 17, (i % 40) * 25 + 1)))
                .collect::<Vec<_>>()
        };
        let flat_slot = ModelSlot::new();
        flat_slot.publish(model.clone(), 0.5);
        let quant_slot = ModelSlot::new();
        quant_slot.publish_compiled(model, 0.5, Some(&map));

        let probe = LfoCache::with_slot(700, LfoConfig::default(), quant_slot.clone());
        assert_eq!(probe.engine_label(), "quantized+pruned");
        let flat_probe = LfoCache::with_slot(700, LfoConfig::default(), flat_slot.clone());
        assert_eq!(flat_probe.engine_label(), "flat");

        assert_eq!(drive(flat_slot), drive(quant_slot));
    }

    #[test]
    fn pooled_shards_share_one_pruned_copy() {
        let data = small_object_training_data();
        let params = GbdtParams::lfo_paper();
        let model = Arc::new(train(&data, &params));
        let map = gbdt::BinMap::fit(&data, params.max_bins);
        let slot = ModelSlot::new();
        slot.publish_compiled(model, 0.5, Some(&map));

        let pool = SharedOccupancy::new(600, 2);
        let mut a = LfoCache::with_slot(600, LfoConfig::default(), slot.clone());
        a.join_pool(pool.clone(), 0);
        let mut b = LfoCache::with_slot(600, LfoConfig::default(), slot.clone());
        b.join_pool(pool.clone(), 1);

        let pa = a.quantized.clone().expect("pooled shard serves quantized");
        let pb = b.quantized.clone().expect("pooled shard serves quantized");
        assert!(
            Arc::ptr_eq(&pa, &pb),
            "shards with the same free bound must share one pruned copy"
        );
        let full = slot.compiled().unwrap().quantized.as_ref().unwrap().clone();
        assert!(
            pa.num_nodes() <= full.num_nodes(),
            "pruning must not grow the model"
        );
    }

    #[test]
    fn free_scale_change_rederives_the_pruned_engine() {
        let data = small_object_training_data();
        let params = GbdtParams::lfo_paper();
        let model = Arc::new(train(&data, &params));
        let map = gbdt::BinMap::fit(&data, params.max_bins);
        let slot = ModelSlot::new();
        slot.publish_compiled(model, 0.5, Some(&map));

        let mut c = LfoCache::with_slot(1_000, LfoConfig::default(), slot);
        let before = c.quantized.clone().unwrap();
        c.set_feature_free_scale(4);
        let after = c.quantized.clone().unwrap();
        assert!(
            !Arc::ptr_eq(&before, &after),
            "a new free bound must map to its own memo entry"
        );
        // The scaled bound covers the scaled feature, so decisions match a
        // flat-engine cache under the same scale.
        c.enable_feature_sampling(1);
        c.handle(&req(0, 1, 100));
        // The row is built before admission: free = 1000 × 4.
        assert_eq!(c.take_feature_samples()[0][2], 4_000.0);
    }

    fn sampled_config(k: usize) -> LfoConfig {
        LfoConfig {
            eviction: Some(EvictionStrategy::sample(k)),
            ..Default::default()
        }
    }

    /// A mixed-size request stream exercising hits, admissions, and
    /// evictions.
    fn mixed_stream(n: u64) -> Vec<Request> {
        (0..n)
            .map(|i| req(i, splitmix64(i) % 23, (splitmix64(i * 7 + 1) % 40) * 25 + 1))
            .collect()
    }

    #[test]
    fn sample_k_full_sampling_matches_exact_queue() {
        // k >= residents degenerates to an RNG-free full scan picking the
        // same (priority, tiebreak, object) minimum as the BTreeSet — every
        // outcome and the final resident set must coincide, with and
        // without a model. (The tests/bounded_state.rs proptest widens
        // this across seeds and capacities.)
        for model in [None, Some(small_object_model())] {
            let drive = |config: LfoConfig| {
                let mut c = LfoCache::new(2_000, config);
                if let Some(m) = &model {
                    c.install_model(m.clone());
                }
                let outcomes: Vec<_> = mixed_stream(500).iter().map(|r| c.handle(r)).collect();
                let mut residents: Vec<u64> = c.entries.keys().map(|o| o.0).collect();
                residents.sort_unstable();
                (outcomes, residents, c.used(), c.evictions)
            };
            assert_eq!(
                drive(LfoConfig::default()),
                drive(sampled_config(usize::MAX)),
                "model = {}",
                model.is_some()
            );
        }
    }

    #[test]
    fn sample_k_respects_capacity_and_evicts() {
        let mut c = LfoCache::new(1_500, sampled_config(4));
        c.install_model(small_object_model());
        for r in mixed_stream(800) {
            c.handle(&r);
            assert!(c.used() <= c.capacity());
        }
        assert!(c.evictions > 0, "sampled eviction never fired");
        assert_eq!(c.eviction_label(), "sample4");
        assert_eq!(
            LfoCache::new(10, LfoConfig::default()).eviction_label(),
            "exact"
        );
    }

    #[test]
    fn sampled_index_is_smaller_than_the_exact_queue() {
        let fill = |config: LfoConfig| {
            let mut c = LfoCache::new(1_000_000, config);
            for i in 0..500u64 {
                c.handle(&req(i, i, 100));
            }
            c.approximate_index_bytes()
        };
        assert!(fill(sampled_config(8)) < fill(LfoConfig::default()));
    }

    #[test]
    fn sampled_pooled_member_reclaims_overshoot_locally() {
        // Without a frontier board a sampled pooled member never defers:
        // pool overshoot is absorbed when the admitting member has nothing
        // to evict (B below), and reclaimed by the next member with
        // residents to give up (A's trim_pool), using its own sampled
        // victim — no frontier publishing anywhere.
        let pool = SharedOccupancy::new(600, 2);
        let mut a = LfoCache::new(600, sampled_config(8));
        a.join_pool(pool.clone(), 0);
        let mut b = LfoCache::new(600, sampled_config(8));
        b.join_pool(pool.clone(), 1);
        a.handle(&req(0, 1, 400));
        b.handle(&req(1, 2, 300)); // B is empty: overshoot absorbed
        assert_eq!(pool.used(), 700);
        a.handle(&req(2, 3, 100)); // A trims the pool with a local victim
        assert_eq!(pool.used(), 400);
        assert_eq!(a.evictions, 1);
        assert_eq!(b.evictions, 0);
    }

    #[test]
    fn guardrail_inherits_sample_k_from_the_eviction_strategy() {
        let mut sampled = LfoCache::new(1_000, sampled_config(16));
        sampled.enable_guardrail(GuardrailConfig::default());
        assert_eq!(
            sampled.guardrail.as_ref().unwrap().config().ghost_sample_k,
            Some(16)
        );
        let mut exact = LfoCache::new(1_000, LfoConfig::default());
        exact.enable_guardrail(GuardrailConfig::default());
        assert_eq!(
            exact.guardrail.as_ref().unwrap().config().ghost_sample_k,
            None
        );
        // An explicit pin survives the inheritance.
        let mut pinned = LfoCache::new(1_000, sampled_config(16));
        pinned.enable_guardrail(GuardrailConfig {
            ghost_sample_k: Some(4),
            ..GuardrailConfig::default()
        });
        assert_eq!(
            pinned.guardrail.as_ref().unwrap().config().ghost_sample_k,
            Some(4)
        );
    }

    #[test]
    fn metadata_accounting_tracks_residents() {
        let mut c = LfoCache::new(10_000, LfoConfig::default());
        assert_eq!(c.approximate_index_bytes(), 0);
        c.install_model(small_object_model());
        assert!(c.model_footprint_bytes() > 0, "flat layout counted");
        for i in 0..8u64 {
            c.handle(&req(i, i, 100));
        }
        assert!(c.approximate_index_bytes() > 0);
        assert!(c.metadata_bytes() >= c.approximate_index_bytes());
        assert!(c.tracker().approximate_bytes() > 0);
    }
}
