//! Multi-threaded prediction serving (the Figure 7 harness).
//!
//! The paper measures "the throughput in million requests per second
//! achieved by our naive LFO predictor": a single thread serves just below
//! 300K predictions/s and scaling is near-linear to 44 threads. This module
//! provides both the measurement harness ([`prediction_throughput`]) and a
//! small production-shaped prediction service ([`PredictionServer`]) where
//! worker threads consume feature batches from a bounded std mpsc channel
//! behind a shared receiver.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gbdt::Model;

/// Result of a throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputResult {
    /// Worker threads used.
    pub threads: usize,
    /// Total predictions served.
    pub predictions: u64,
    /// Wall-clock time measured.
    pub elapsed: Duration,
}

impl ThroughputResult {
    /// Predictions per second.
    pub fn per_second(&self) -> f64 {
        self.predictions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Implied bytes/second of served traffic at a mean object size
    /// (the paper assumes 32 KB objects to relate predictions/s to a
    /// 40 Gbit/s NIC).
    pub fn implied_bits_per_second(&self, mean_object_bytes: u64) -> f64 {
        self.per_second() * mean_object_bytes as f64 * 8.0
    }
}

/// Measures raw prediction throughput: `threads` workers evaluate the model
/// over `rows` round-robin for `duration`.
///
/// # Panics
///
/// Panics if `threads` is 0 or `rows` is empty.
pub fn prediction_throughput(
    model: &Model,
    rows: &[Vec<f32>],
    threads: usize,
    duration: Duration,
) -> ThroughputResult {
    assert!(threads > 0, "need at least one thread");
    assert!(!rows.is_empty(), "need at least one feature row");
    let total = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let total = &total;
            let stop = &stop;
            scope.spawn(move || {
                let mut local = 0u64;
                let mut at = worker % rows.len();
                // Check the deadline in batches to keep the hot loop tight.
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..1024 {
                        std::hint::black_box(model.predict_proba(&rows[at]));
                        at += 1;
                        if at == rows.len() {
                            at = 0;
                        }
                    }
                    local += 1024;
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
        // The scope's main thread acts as the timer.
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });

    ThroughputResult {
        threads,
        predictions: total.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

/// A batch of feature rows submitted to the [`PredictionServer`].
pub type FeatureBatch = Vec<Vec<f32>>;

/// One submitted batch travelling through the server: (batch id, features).
type BatchItem = (u64, FeatureBatch);
/// The shared sink of (batch id, scores) results.
type ResultSink = Arc<Mutex<Vec<(u64, Vec<f64>)>>>;

/// A small production-shaped prediction service: worker threads consume
/// feature batches from a bounded channel and append (batch id, scores)
/// results to a shared sink.
pub struct PredictionServer {
    sender: Option<SyncSender<BatchItem>>,
    workers: Vec<std::thread::JoinHandle<u64>>,
    results: ResultSink,
}

impl PredictionServer {
    /// Starts `threads` workers sharing `model`.
    pub fn start(model: Arc<Model>, threads: usize) -> Self {
        assert!(threads > 0);
        let (sender, receiver) = sync_channel::<BatchItem>(threads * 4);
        // std mpsc receivers are single-consumer; a mutex turns the channel
        // into the multi-consumer work queue crossbeam used to provide.
        let receiver: Arc<Mutex<Receiver<BatchItem>>> = Arc::new(Mutex::new(receiver));
        let results: ResultSink = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let model = Arc::clone(&model);
                let results = Arc::clone(&results);
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    loop {
                        let next = receiver.lock().expect("receiver lock poisoned").recv();
                        let Ok((id, batch)) = next else { break };
                        let scores: Vec<f64> =
                            batch.iter().map(|row| model.predict_proba(row)).collect();
                        served += scores.len() as u64;
                        results
                            .lock()
                            .expect("results lock poisoned")
                            .push((id, scores));
                    }
                    served
                })
            })
            .collect();
        PredictionServer {
            sender: Some(sender),
            workers,
            results,
        }
    }

    /// Submits a batch; blocks if the queue is full (backpressure).
    pub fn submit(&self, id: u64, batch: FeatureBatch) {
        self.sender
            .as_ref()
            .expect("server running")
            .send((id, batch))
            .expect("workers alive");
    }

    /// Stops the workers and returns (total predictions served, results).
    pub fn shutdown(mut self) -> (u64, Vec<(u64, Vec<f64>)>) {
        drop(self.sender.take());
        let mut total = 0;
        for w in self.workers.drain(..) {
            total += w.join().expect("worker panicked");
        }
        let results = std::mem::take(&mut *self.results.lock().expect("results lock poisoned"));
        (total, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt::{train, Dataset, GbdtParams};

    fn toy_model() -> Model {
        let rows: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32, (i % 7) as f32]).collect();
        let labels: Vec<f32> = (0..200).map(|i| (i > 100) as u8 as f32).collect();
        train(
            &Dataset::from_rows(rows, labels).unwrap(),
            &GbdtParams::lfo_paper(),
        )
    }

    #[test]
    fn throughput_measures_something() {
        let model = toy_model();
        let rows: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32, 1.0]).collect();
        let r = prediction_throughput(&model, &rows, 2, Duration::from_millis(50));
        assert_eq!(r.threads, 2);
        assert!(r.predictions > 1_000, "only {} predictions", r.predictions);
        assert!(r.per_second() > 0.0);
        assert!(r.implied_bits_per_second(32 * 1024) > 0.0);
    }

    #[test]
    fn more_threads_do_not_reduce_throughput_much() {
        let model = toy_model();
        let rows: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32, 1.0]).collect();
        let one = prediction_throughput(&model, &rows, 1, Duration::from_millis(100));
        let four = prediction_throughput(&model, &rows, 4, Duration::from_millis(100));
        // Scaling assertions are inherently noisy on shared machines (other
        // processes may own most cores while this test runs), so only guard
        // against pathological collapse: 4 threads must retain at least
        // ~two-thirds of single-thread throughput.
        assert!(
            four.per_second() > one.per_second() * 0.66,
            "1T {} vs 4T {}",
            one.per_second(),
            four.per_second()
        );
    }

    #[test]
    fn server_serves_all_batches() {
        let model = Arc::new(toy_model());
        let server = PredictionServer::start(model, 3);
        for id in 0..20u64 {
            let batch: FeatureBatch = (0..50).map(|i| vec![i as f32, 0.0]).collect();
            server.submit(id, batch);
        }
        let (served, results) = server.shutdown();
        assert_eq!(served, 20 * 50);
        assert_eq!(results.len(), 20);
        let mut ids: Vec<u64> = results.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn server_scores_match_direct_prediction() {
        let model = Arc::new(toy_model());
        let server = PredictionServer::start(Arc::clone(&model), 2);
        let batch: FeatureBatch = vec![vec![150.0, 1.0], vec![10.0, 1.0]];
        server.submit(7, batch.clone());
        let (_, results) = server.shutdown();
        assert_eq!(results[0].1[0], model.predict_proba(&batch[0]));
        assert_eq!(results[0].1[1], model.predict_proba(&batch[1]));
    }
}
