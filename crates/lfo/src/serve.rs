//! Multi-threaded prediction serving (the Figure 7 harness).
//!
//! The paper measures "the throughput in million requests per second
//! achieved by our naive LFO predictor": a single thread serves just below
//! 300K predictions/s and scaling is near-linear to 44 threads. This module
//! provides both the measurement harness ([`prediction_throughput`]) and a
//! small production-shaped prediction service ([`PredictionServer`]) where
//! worker threads consume feature batches from a bounded std mpsc channel
//! behind a shared receiver.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use gbdt::{BinMap, EngineKind, Model, PackedScorer, Predicate, BATCH_ROWS};

/// Result of a throughput measurement.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputResult {
    /// Worker threads used.
    pub threads: usize,
    /// Total predictions served.
    pub predictions: u64,
    /// Wall-clock time measured.
    pub elapsed: Duration,
}

impl ThroughputResult {
    /// Predictions per second.
    pub fn per_second(&self) -> f64 {
        self.predictions as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Implied bytes/second of served traffic at a mean object size
    /// (the paper assumes 32 KB objects to relate predictions/s to a
    /// 40 Gbit/s NIC).
    pub fn implied_bits_per_second(&self, mean_object_bytes: u64) -> f64 {
        self.per_second() * mean_object_bytes as f64 * 8.0
    }
}

/// Measures raw prediction throughput through the flat f32 engine:
/// `threads` workers evaluate the model over `rows` round-robin for
/// `duration`. Shorthand for [`prediction_throughput_engine`] with
/// [`EngineKind::Flat`], which needs no bin grid.
///
/// # Panics
///
/// Panics if `threads` is 0 or `rows` is empty.
pub fn prediction_throughput(
    model: &Model,
    rows: &[Vec<f32>],
    threads: usize,
    duration: Duration,
) -> ThroughputResult {
    prediction_throughput_engine(model, rows, threads, duration, EngineKind::Flat, None, &[])
        .expect("the flat engine needs no bin grid")
}

/// Measures raw prediction throughput through one serving engine:
/// `threads` workers score `rows` round-robin for `duration`.
///
/// The harness measures the *serving* inference path: the model is
/// compiled once into the engine's layout and the rows are packed once
/// into that layout's native representation (f32 row-major for the
/// recursive/flat walks, u16 bins for the quantized engines) via
/// [`gbdt::PackedScorer`], then workers score [`gbdt::BATCH_ROWS`]-sized
/// batches through the shared scorer — the same batched entry point the
/// training pipeline's prediction helper uses.
///
/// Returns `None` when `engine` needs the frozen training grid and
/// `bin_map` is absent or was fit on a different feature count.
///
/// # Panics
///
/// Panics if `threads` is 0 or `rows` is empty.
pub fn prediction_throughput_engine(
    model: &Model,
    rows: &[Vec<f32>],
    threads: usize,
    duration: Duration,
    engine: EngineKind,
    bin_map: Option<&BinMap>,
    predicates: &[Predicate],
) -> Option<ThroughputResult> {
    assert!(threads > 0, "need at least one thread");
    assert!(!rows.is_empty(), "need at least one feature row");
    let scorer = PackedScorer::pack(model, engine, rows, bin_map, predicates)?;
    let num_rows = scorer.num_rows();

    let total = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let total = &total;
            let stop = &stop;
            let scorer = &scorer;
            scope.spawn(move || {
                let mut local = 0u64;
                let mut out = vec![0.0f64; BATCH_ROWS];
                let mut at = worker % num_rows;
                // Check the deadline per batch to keep the hot loop tight.
                while !stop.load(Ordering::Relaxed) {
                    let end = (at + BATCH_ROWS).min(num_rows);
                    let batch = end - at;
                    scorer.score_range(at, end, &mut out[..batch]);
                    std::hint::black_box(&out);
                    local += batch as u64;
                    at = if end == num_rows { 0 } else { end };
                }
                total.fetch_add(local, Ordering::Relaxed);
            });
        }
        // The scope's main thread acts as the timer.
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
    });

    Some(ThroughputResult {
        threads,
        predictions: total.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    })
}

/// A batch of feature rows submitted to the [`PredictionServer`].
pub type FeatureBatch = Vec<Vec<f32>>;

/// One submitted batch travelling through the server: (batch id, features).
type BatchItem = (u64, FeatureBatch);
/// The shared sink of (batch id, scores) results.
type ResultSink = Arc<Mutex<Vec<(u64, Vec<f64>)>>>;

/// Why a batch submission was not accepted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full right now (apply backpressure and retry).
    QueueFull,
    /// The queue stayed full for the whole
    /// [`submit_timeout`](PredictionServer::submit_timeout) budget.
    Timeout,
    /// Every worker has stopped (all of them panicked); the batch can never
    /// be served.
    WorkersStopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "prediction queue full"),
            SubmitError::Timeout => write!(f, "prediction queue full past the timeout"),
            SubmitError::WorkersStopped => write!(f, "all prediction workers stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Outcome of [`PredictionServer::shutdown`].
#[derive(Debug)]
pub struct ShutdownReport {
    /// Total predictions served by workers that exited cleanly.
    pub served: u64,
    /// Workers that died to a panic instead of exiting cleanly.
    pub panicked_workers: usize,
    /// All (batch id, scores) results, in completion order.
    pub results: Vec<(u64, Vec<f64>)>,
}

/// Locks a mutex, recovering the guard if a previous holder panicked — a
/// dead worker must not take the rest of the server down with it.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small production-shaped prediction service: worker threads consume
/// feature batches from a bounded channel and append (batch id, scores)
/// results to a shared sink.
///
/// The server is fault-contained: a panicking worker kills only itself
/// (surviving workers recover any mutex it poisoned and keep serving), and
/// [`shutdown`](PredictionServer::shutdown) reports the casualty count
/// instead of propagating the panic. Submission offers blocking
/// ([`submit`](PredictionServer::submit)), non-blocking
/// ([`try_submit`](PredictionServer::try_submit)), and bounded-wait
/// ([`submit_timeout`](PredictionServer::submit_timeout)) flavours.
pub struct PredictionServer {
    sender: Option<SyncSender<BatchItem>>,
    workers: Vec<std::thread::JoinHandle<u64>>,
    results: ResultSink,
}

impl PredictionServer {
    /// Fault-injection hook: a batch submitted with this id makes the
    /// worker that picks it up panic, simulating a crash mid-batch. Used to
    /// test that the server contains worker death (and by operators to
    /// drill it); never use it as a real batch id.
    pub const PANIC_PILL: u64 = u64::MAX;

    /// Fault-injection hook: a batch submitted with this id makes the
    /// worker that picks it up acknowledge the pill in the result sink and
    /// then stall for [`Self::STALL`], simulating a wedged worker.
    /// Backpressure drills use it to hold the queue provably full; never
    /// use it as a real batch id.
    pub const STALL_PILL: u64 = u64::MAX - 1;

    /// How long a worker stalls after swallowing [`Self::STALL_PILL`].
    pub const STALL: Duration = Duration::from_secs(1);

    /// Starts `threads` workers sharing `model`. The model is flattened
    /// into its SoA serving layout once here; workers score through it
    /// (bit-equal to `Model::predict_proba`).
    pub fn start(model: Arc<Model>, threads: usize) -> Self {
        assert!(threads > 0);
        let flat = Arc::new(model.flatten());
        let (sender, receiver) = sync_channel::<BatchItem>(threads * 4);
        // std mpsc receivers are single-consumer; a mutex turns the channel
        // into the multi-consumer work queue crossbeam used to provide.
        let receiver: Arc<Mutex<Receiver<BatchItem>>> = Arc::new(Mutex::new(receiver));
        let results: ResultSink = Arc::new(Mutex::new(Vec::new()));
        let workers = (0..threads)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                let flat = Arc::clone(&flat);
                let results = Arc::clone(&results);
                std::thread::spawn(move || {
                    let mut served = 0u64;
                    loop {
                        let next = lock_unpoisoned(&receiver).recv();
                        let Ok((id, batch)) = next else { break };
                        if id == PredictionServer::PANIC_PILL {
                            panic!("injected prediction-worker panic (panic pill)");
                        }
                        if id == PredictionServer::STALL_PILL {
                            // Ack first so the submitter can observe that the
                            // pill is swallowed (and the stall underway)
                            // before relying on the queue staying full.
                            lock_unpoisoned(&results).push((id, Vec::new()));
                            std::thread::sleep(PredictionServer::STALL);
                            continue;
                        }
                        let scores: Vec<f64> =
                            batch.iter().map(|row| flat.predict_proba(row)).collect();
                        served += scores.len() as u64;
                        lock_unpoisoned(&results).push((id, scores));
                    }
                    served
                })
            })
            .collect();
        PredictionServer {
            sender: Some(sender),
            workers,
            results,
        }
    }

    /// Starts a server cold-started from a persisted artifact — the
    /// serving-host path of a model rollout: load from the artifact store,
    /// verify (the artifact only parses if its checksum holds), serve.
    pub fn start_from_artifact(artifact: &crate::persist::LfoArtifact, threads: usize) -> Self {
        Self::start(Arc::new(artifact.model.clone()), threads)
    }

    fn sender(&self) -> &SyncSender<BatchItem> {
        self.sender.as_ref().expect("sender present until shutdown")
    }

    /// Submits a batch; blocks while the queue is full (backpressure).
    /// Fails only when every worker has stopped.
    pub fn submit(&self, id: u64, batch: FeatureBatch) -> Result<(), SubmitError> {
        self.sender()
            .send((id, batch))
            .map_err(|_| SubmitError::WorkersStopped)
    }

    /// Submits a batch without blocking: a full queue is reported as
    /// [`SubmitError::QueueFull`] instead of stalling the caller (the
    /// serving hot path must never wait on the learner's side of the
    /// house).
    pub fn try_submit(&self, id: u64, batch: FeatureBatch) -> Result<(), SubmitError> {
        self.sender().try_send((id, batch)).map_err(|e| match e {
            TrySendError::Full(_) => SubmitError::QueueFull,
            TrySendError::Disconnected(_) => SubmitError::WorkersStopped,
        })
    }

    /// Submits a batch, waiting at most `timeout` for queue space. std's
    /// `SyncSender` has no native `send_timeout`, so this polls
    /// `try_send` with a short sleep — fine for a backpressure path that
    /// is expected to succeed almost always.
    pub fn submit_timeout(
        &self,
        id: u64,
        batch: FeatureBatch,
        timeout: Duration,
    ) -> Result<(), SubmitError> {
        const POLL: Duration = Duration::from_micros(200);
        let deadline = Instant::now() + timeout;
        let mut item = (id, batch);
        loop {
            match self.sender().try_send(item) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => return Err(SubmitError::WorkersStopped),
                Err(TrySendError::Full(back)) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SubmitError::Timeout);
                    }
                    item = back;
                    std::thread::sleep(POLL.min(deadline - now));
                }
            }
        }
    }

    /// Stops the workers and reports what was served, including how many
    /// workers died to a panic along the way (their completed batches are
    /// still in [`ShutdownReport::results`]).
    pub fn shutdown(mut self) -> ShutdownReport {
        drop(self.sender.take());
        let mut served = 0;
        let mut panicked_workers = 0;
        for w in self.workers.drain(..) {
            match w.join() {
                Ok(count) => served += count,
                Err(_) => panicked_workers += 1,
            }
        }
        let results = std::mem::take(&mut *lock_unpoisoned(&self.results));
        ShutdownReport {
            served,
            panicked_workers,
            results,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt::{train, Dataset, GbdtParams};

    fn toy_model() -> Model {
        let rows: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32, (i % 7) as f32]).collect();
        let labels: Vec<f32> = (0..200).map(|i| (i > 100) as u8 as f32).collect();
        train(
            &Dataset::from_rows(rows, labels).unwrap(),
            &GbdtParams::lfo_paper(),
        )
    }

    #[test]
    fn throughput_measures_something() {
        let model = toy_model();
        let rows: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32, 1.0]).collect();
        let r = prediction_throughput(&model, &rows, 2, Duration::from_millis(50));
        assert_eq!(r.threads, 2);
        assert!(r.predictions > 1_000, "only {} predictions", r.predictions);
        assert!(r.per_second() > 0.0);
        assert!(r.implied_bits_per_second(32 * 1024) > 0.0);
    }

    #[test]
    fn more_threads_do_not_reduce_throughput_much() {
        let model = toy_model();
        let rows: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32, 1.0]).collect();
        let one = prediction_throughput(&model, &rows, 1, Duration::from_millis(100));
        let four = prediction_throughput(&model, &rows, 4, Duration::from_millis(100));
        // Scaling assertions are inherently noisy on shared machines (other
        // processes may own most cores while this test runs), so only guard
        // against pathological collapse: 4 threads must retain at least
        // ~two-thirds of single-thread throughput.
        assert!(
            four.per_second() > one.per_second() * 0.66,
            "1T {} vs 4T {}",
            one.per_second(),
            four.per_second()
        );
    }

    #[test]
    fn quantized_engine_needs_a_grid_and_serves() {
        let rows: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32, (i % 7) as f32]).collect();
        let labels: Vec<f32> = (0..200).map(|i| (i > 100) as u8 as f32).collect();
        let data = Dataset::from_rows(rows.clone(), labels).unwrap();
        let params = GbdtParams::lfo_paper();
        let model = train(&data, &params);
        let map = gbdt::BinMap::fit(&data, params.max_bins);
        assert!(prediction_throughput_engine(
            &model,
            &rows,
            1,
            Duration::from_millis(10),
            EngineKind::Quantized,
            None,
            &[]
        )
        .is_none());
        for engine in EngineKind::ALL {
            let r = prediction_throughput_engine(
                &model,
                &rows,
                1,
                Duration::from_millis(20),
                engine,
                Some(&map),
                &[],
            )
            .unwrap();
            assert!(
                r.predictions > 0,
                "engine {} served nothing",
                engine.label()
            );
        }
    }

    #[test]
    fn server_serves_all_batches() {
        let model = Arc::new(toy_model());
        let server = PredictionServer::start(model, 3);
        for id in 0..20u64 {
            let batch: FeatureBatch = (0..50).map(|i| vec![i as f32, 0.0]).collect();
            server.submit(id, batch).unwrap();
        }
        let report = server.shutdown();
        assert_eq!(report.served, 20 * 50);
        assert_eq!(report.panicked_workers, 0);
        assert_eq!(report.results.len(), 20);
        let mut ids: Vec<u64> = report.results.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn server_scores_match_direct_prediction() {
        let model = Arc::new(toy_model());
        let server = PredictionServer::start(Arc::clone(&model), 2);
        let batch: FeatureBatch = vec![vec![150.0, 1.0], vec![10.0, 1.0]];
        server.submit(7, batch.clone()).unwrap();
        let report = server.shutdown();
        assert_eq!(report.results[0].1[0], model.predict_proba(&batch[0]));
        assert_eq!(report.results[0].1[1], model.predict_proba(&batch[1]));
    }

    #[test]
    fn try_submit_reports_queue_full_instead_of_blocking() {
        let model = Arc::new(toy_model());
        // One worker, so the queue holds 4 batches. Wedge the worker with a
        // stall pill and wait for its ack in the result sink: from that
        // point the worker is asleep for a full STALL, so no queue slot can
        // free while the assertions below run.
        let server = PredictionServer::start(model, 1);
        server
            .submit(PredictionServer::STALL_PILL, Vec::new())
            .unwrap();
        while !lock_unpoisoned(&server.results)
            .iter()
            .any(|(id, _)| *id == PredictionServer::STALL_PILL)
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Fill every queue slot, then one more: try_submit must come back
        // with QueueFull, not block.
        for id in 1..=4u64 {
            server.try_submit(id, vec![vec![1.0, 1.0]]).unwrap();
        }
        assert_eq!(
            server.try_submit(5, vec![vec![1.0, 1.0]]),
            Err(SubmitError::QueueFull)
        );
        // Still wedged: a 5 ms bounded wait must report Timeout, and must
        // actually wait out its budget before giving up.
        let started = Instant::now();
        assert_eq!(
            server.submit_timeout(99, vec![vec![1.0, 1.0]], Duration::from_millis(5)),
            Err(SubmitError::Timeout)
        );
        assert!(started.elapsed() >= Duration::from_millis(5));
        // The worker wakes after the stall and drains the four queued
        // one-row batches before exiting.
        let report = server.shutdown();
        assert_eq!(report.panicked_workers, 0);
        assert_eq!(report.served, 4);
    }

    #[test]
    fn worker_panic_is_contained_and_reported() {
        let model = Arc::new(toy_model());
        let server = PredictionServer::start(model, 2);
        server.submit(1, vec![vec![1.0, 1.0]]).unwrap();
        // Kill one worker with the scripted panic pill.
        server
            .submit(PredictionServer::PANIC_PILL, Vec::new())
            .unwrap();
        // The surviving worker must keep serving new batches.
        for id in 2..10u64 {
            server
                .submit_timeout(id, vec![vec![2.0, 0.0]], Duration::from_secs(5))
                .unwrap();
        }
        let report = server.shutdown();
        assert_eq!(report.panicked_workers, 1);
        // Every completed batch reaches the results sink — even ones served
        // by the worker that later died (its in-thread `served` tally is
        // lost with it, so only bound that count).
        assert_eq!(report.results.len(), 9);
        assert!((8..=9).contains(&report.served), "served {}", report.served);
    }

    #[test]
    fn all_workers_dead_is_workers_stopped_not_a_hang() {
        let model = Arc::new(toy_model());
        let server = PredictionServer::start(model, 1);
        server
            .submit(PredictionServer::PANIC_PILL, Vec::new())
            .unwrap();
        // The lone worker dies and drops the queue's receiver; every submit
        // flavour must now fail fast instead of blocking forever.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match server.try_submit(5, vec![vec![1.0, 1.0]]) {
                Err(SubmitError::WorkersStopped) => break,
                _ => assert!(Instant::now() < deadline, "never saw WorkersStopped"),
            }
        }
        assert_eq!(
            server.submit(6, vec![vec![1.0, 1.0]]),
            Err(SubmitError::WorkersStopped)
        );
        assert_eq!(
            server.submit_timeout(7, vec![vec![1.0, 1.0]], Duration::from_millis(1)),
            Err(SubmitError::WorkersStopped)
        );
        let report = server.shutdown();
        assert_eq!(report.panicked_workers, 1);
    }
}
