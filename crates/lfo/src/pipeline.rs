//! The sliding-window pipeline (paper Figure 2).
//!
//! "LFO records a sliding window of consecutive requests (W\[t\]). For the
//! requests in W\[t\], LFO calculates OPT's decisions and derives a vector
//! of online features. LFO then trains a caching policy that maps the
//! online features to OPT's decisions. The trained policy is then used over
//! the next window, t + 1, during which LFO again records the requests."
//!
//! The pipeline simultaneously (a) serves requests through the live
//! [`LfoCache`] (untrained ⇒ LRU fallback in the first window) and
//! (b) evaluates each window's model against the *next* window's OPT
//! decisions — the paper's prediction-error metric ("LFO is trained on one
//! part e.g. requests 0–1M and evaluated on the ensuing part").

use std::sync::Arc;

use cdn_cache::{simulate, IntervalMetrics, SimConfig};
use cdn_trace::Request;
use gbdt::Model;
use opt::{compute_opt, compute_opt_pruned, compute_opt_segmented, OptConfig, OptError};

use crate::config::LfoConfig;
use crate::labels::build_training_set;
use crate::policy::LfoCache;
use crate::train::{equalize_cutoff, evaluate, train_window};

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Requests per window (the paper uses 1M on the production trace).
    pub window: usize,
    /// Cache capacity in bytes.
    pub cache_size: u64,
    /// LFO learner/policy settings.
    pub lfo: LfoConfig,
    /// OPT time-axis segment size; 0 = exact solve per window.
    pub opt_segment: usize,
    /// OPT rank-pruning keep fraction; 1.0 = no pruning.
    pub opt_prune: f64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            window: 100_000,
            cache_size: 64 * 1024 * 1024,
            lfo: LfoConfig::default(),
            opt_segment: 0,
            opt_prune: 1.0,
        }
    }
}

/// Per-window pipeline diagnostics.
#[derive(Clone, Debug)]
pub struct WindowReport {
    /// Window index (0-based).
    pub index: usize,
    /// Requests in the window.
    pub requests: usize,
    /// LFO's live hit metrics over this window.
    pub live: IntervalMetrics,
    /// Whether a trained model served this window.
    pub had_model: bool,
    /// Prediction error of the *previous* window's model against this
    /// window's OPT decisions (the Figure 5 metric); `None` for window 0.
    pub prediction_error: Option<f64>,
    /// False-positive fraction of that evaluation.
    pub false_positive: Option<f64>,
    /// False-negative fraction of that evaluation.
    pub false_negative: Option<f64>,
    /// Training accuracy of the model trained *on* this window.
    pub train_accuracy: f64,
    /// OPT's byte hit ratio on this window (upper reference).
    pub opt_bhr: f64,
    /// OPT's object hit ratio on this window.
    pub opt_ohr: f64,
    /// Admission cutoff deployed for the *next* window (differs from the
    /// configured value under [`crate::CutoffMode::EqualizeErrorRates`]).
    pub deployed_cutoff: f64,
}

/// The pipeline's overall outcome.
#[derive(Debug)]
pub struct PipelineReport {
    /// Per-window diagnostics.
    pub windows: Vec<WindowReport>,
    /// LFO's live metrics across all windows.
    pub live_total: IntervalMetrics,
    /// LFO's live metrics excluding window 0 (the untrained fallback) —
    /// comparable to the paper's evaluation protocol.
    pub live_trained: IntervalMetrics,
    /// The final trained model.
    pub final_model: Option<Arc<Model>>,
}

impl PipelineReport {
    /// Mean prediction accuracy across evaluated windows (the paper's
    /// "LFO matches OPT's prediction for over 93% of the requests").
    pub fn mean_prediction_accuracy(&self) -> Option<f64> {
        let errors: Vec<f64> = self
            .windows
            .iter()
            .filter_map(|w| w.prediction_error)
            .collect();
        if errors.is_empty() {
            None
        } else {
            Some(1.0 - errors.iter().sum::<f64>() / errors.len() as f64)
        }
    }
}

fn merge(into: &mut IntervalMetrics, from: &IntervalMetrics) {
    into.requests += from.requests;
    into.hits += from.hits;
    into.total_bytes += from.total_bytes;
    into.hit_bytes += from.hit_bytes;
}

/// Runs the Figure 2 loop over `requests`.
///
/// Returns an error if a window's OPT computation fails (which indicates a
/// bug rather than bad input — see [`OptError`]).
pub fn run_pipeline(
    requests: &[Request],
    config: &PipelineConfig,
) -> Result<PipelineReport, OptError> {
    if requests.is_empty() {
        return Err(OptError::EmptyWindow);
    }
    let opt_config = OptConfig {
        cache_size: config.cache_size,
        cost_model: config.lfo.cost_model,
        ..OptConfig::bhr(config.cache_size)
    };

    let mut cache = LfoCache::new(config.cache_size, config.lfo.clone());
    let mut training_tracker = config.lfo.tracker();
    let mut report = PipelineReport {
        windows: Vec::new(),
        live_total: IntervalMetrics::default(),
        live_trained: IntervalMetrics::default(),
        final_model: None,
    };
    let mut previous_model: Option<Arc<Model>> = None;

    for (index, window) in requests.chunks(config.window.max(1)).enumerate() {
        let had_model = cache.has_model();

        // (a) Serve the window live through the LFO cache.
        let live = simulate(&mut cache, window, &SimConfig::default()).measured;

        // (b) Compute OPT for the window just recorded.
        let opt = if config.opt_prune < 1.0 {
            compute_opt_pruned(window, &opt_config, config.opt_prune)?.result
        } else if config.opt_segment > 0 {
            compute_opt_segmented(window, &opt_config, config.opt_segment)?
        } else {
            compute_opt(window, &opt_config)?
        };

        // (c) Build the training set (advances the training tracker).
        let data =
            build_training_set(window, &opt, &mut training_tracker, config.cache_size);

        // (d) Evaluate the previous model on this window (paper's
        // train-on-t, test-on-t+1 protocol).
        let (prediction_error, false_positive, false_negative) = match &previous_model {
            Some(model) => {
                let confusion = evaluate(model, &data, config.lfo.cutoff);
                (
                    Some(confusion.error_fraction()),
                    Some(confusion.false_positive_fraction()),
                    Some(confusion.false_negative_fraction()),
                )
            }
            None => (None, None, None),
        };

        // (e) Train on this window; deploy for the next — optionally with
        // a re-tuned cutoff (§3's FP/FN equalization).
        let trained = train_window(&data, &config.lfo);
        let deployed_cutoff = match config.lfo.cutoff_mode {
            crate::CutoffMode::Fixed(c) => c,
            crate::CutoffMode::EqualizeErrorRates => {
                equalize_cutoff(&trained.train_probs, &trained.train_labels)
            }
        };
        cache.set_cutoff(deployed_cutoff);
        let model = Arc::new(trained.model);
        cache.install_model(Arc::clone(&model));
        previous_model = Some(Arc::clone(&model));
        report.final_model = Some(model);

        merge(&mut report.live_total, &live);
        if had_model {
            merge(&mut report.live_trained, &live);
        }
        report.windows.push(WindowReport {
            index,
            requests: window.len(),
            live,
            had_model,
            prediction_error,
            false_positive,
            false_negative,
            train_accuracy: trained.train_accuracy,
            opt_bhr: opt.bhr(),
            opt_ohr: opt.ohr(),
            deployed_cutoff,
        });
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{GeneratorConfig, TraceGenerator};

    fn small_config(window: usize, cache: u64) -> PipelineConfig {
        PipelineConfig {
            window,
            cache_size: cache,
            ..Default::default()
        }
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(run_pipeline(&[], &PipelineConfig::default()).is_err());
    }

    #[test]
    fn window_structure_and_model_rollout() {
        let trace = TraceGenerator::new(GeneratorConfig::small(1, 9_000)).generate();
        let report =
            run_pipeline(trace.requests(), &small_config(3_000, 4 * 1024 * 1024)).unwrap();
        assert_eq!(report.windows.len(), 3);
        assert!(!report.windows[0].had_model, "window 0 must be untrained");
        assert!(report.windows[1].had_model);
        assert!(report.windows[2].had_model);
        assert!(report.windows[0].prediction_error.is_none());
        assert!(report.windows[1].prediction_error.is_some());
        assert!(report.final_model.is_some());
    }

    #[test]
    fn prediction_accuracy_is_high() {
        let trace = TraceGenerator::new(GeneratorConfig::small(2, 15_000)).generate();
        let report =
            run_pipeline(trace.requests(), &small_config(5_000, 8 * 1024 * 1024)).unwrap();
        let acc = report.mean_prediction_accuracy().unwrap();
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn live_metrics_partition_into_windows() {
        let trace = TraceGenerator::new(GeneratorConfig::small(3, 6_000)).generate();
        let report =
            run_pipeline(trace.requests(), &small_config(2_000, 2 * 1024 * 1024)).unwrap();
        let sum: u64 = report.windows.iter().map(|w| w.live.requests).sum();
        assert_eq!(sum, 6_000);
        assert_eq!(report.live_total.requests, 6_000);
        assert_eq!(report.live_trained.requests, 4_000);
    }

    #[test]
    fn equalized_cutoff_mode_tunes_per_window() {
        let trace = TraceGenerator::new(GeneratorConfig::small(6, 6_000)).generate();
        let mut config = small_config(3_000, 4 * 1024 * 1024);
        config.lfo.cutoff_mode = crate::CutoffMode::EqualizeErrorRates;
        let report = run_pipeline(trace.requests(), &config).unwrap();
        for w in &report.windows {
            assert!((0.0..=1.0).contains(&w.deployed_cutoff));
        }
        // At least one window should deviate from the fixed 0.5.
        assert!(
            report.windows.iter().any(|w| (w.deployed_cutoff - 0.5).abs() > 1e-9),
            "tuning never moved the cutoff"
        );
    }

    #[test]
    fn pruned_opt_pipeline_also_works() {
        let trace = TraceGenerator::new(GeneratorConfig::small(4, 6_000)).generate();
        let mut config = small_config(3_000, 4 * 1024 * 1024);
        config.opt_prune = 0.5;
        let report = run_pipeline(trace.requests(), &config).unwrap();
        assert_eq!(report.windows.len(), 2);
        assert!(report.mean_prediction_accuracy().unwrap() > 0.7);
    }

    #[test]
    fn segmented_opt_pipeline_also_works() {
        let trace = TraceGenerator::new(GeneratorConfig::small(5, 6_000)).generate();
        let mut config = small_config(3_000, 4 * 1024 * 1024);
        config.opt_segment = 1_000;
        let report = run_pipeline(trace.requests(), &config).unwrap();
        assert_eq!(report.windows.len(), 2);
    }
}
