//! Fleet-shared, lock-free doorkeeper state (DESIGN.md §16).
//!
//! PR 8's [`crate::TrackerBudget`] bounds one cache's tracker with a
//! doorkeeper sketch and a GCLOCK ring — but a pooled
//! [`crate::ShardedLfoCache`] fleet instantiates that state *per shard*,
//! so fleet metadata scales with budget × shards and shards never share
//! first-sighting evidence: the same one-hit-wonder tail is re-probed N
//! times. [`SharedDoorkeeper`] is the fleet-wide replacement:
//!
//! - **One sketch for the whole fleet.** A flat power-of-two array of
//!   `AtomicU32` saturated last-access slots, updated by relaxed
//!   compare-and-swap that only ever advances a slot's time (first
//!   sighting writes the sketch, second sighting promotes into the
//!   shard-local exact tracker — exactly the PR 8 protocol, shared).
//!   A slot write is wait-free in practice: one CAS, retried only when
//!   another shard raced the same slot in the same instant.
//! - **A striped GCLOCK recycling ring.** The pool's `max_objects`
//!   budget is split into per-shard stripes, each with its own sweep
//!   cursor behind a cheap per-stripe lock, so eviction sweeps never
//!   serialize the fleet; reference counters are atomics, so the hit
//!   path never takes a lock at all.
//!
//! With one stripe the pool reproduces the private bounded tracker's
//! decisions bit for bit (proptest-enforced in `tests/bounded_state.rs`);
//! the single-owner [`crate::FeatureTracker`] path does not touch this
//! module at all.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};

use cdn_trace::ObjectId;
use serde::Serialize;

use crate::features::TrackerBudget;

/// Sketch slot sentinel: no object hashing here has been seen. Same value
/// as the private tracker's sentinel (`u32::MAX`), and numerically above
/// every saturated time, so the advance-only CAS special-cases it.
pub const EMPTY_SLOT: u32 = u32::MAX;

/// Saturation ceiling for GCLOCK reference counters (same constant as the
/// private ring in `lfo::features`).
const CLOCK_MAX_COUNT: u8 = 3;

/// The repo's standard 64-bit mixer (same constants as `lfo::features`,
/// so a shared pool built from a budget hashes objects to the same
/// buckets as a private tracker built from that budget).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Contention and traffic counters for a [`SharedDoorkeeper`], snapshot
/// by the `repro concurrency` benchmark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct SketchPoolStats {
    /// Successful sketch-slot writes (first sightings and refreshes).
    pub sketch_updates: u64,
    /// CAS attempts that lost a race to another shard and retried.
    pub cas_retries: u64,
    /// Stripe-lock acquisitions that found the lock held (should be ~0:
    /// each stripe is owned by one shard; contention only appears when a
    /// guardrail or snapshot path touches a foreign stripe).
    pub stripe_contention: u64,
}

/// One stripe's mutable ring state: the parked objects and the sweep
/// hand. Reference counters live outside the lock (atomics indexed by
/// global slot) so the hit path stays lock-free.
#[derive(Debug, Default)]
struct StripeRing {
    /// The object parked in each local slot.
    objects: Vec<ObjectId>,
    /// Next local slot the eviction sweep examines.
    hand: usize,
}

/// A stripe of the fleet GCLOCK ring: a contiguous range of global slots
/// owned (in the common case) by exactly one shard.
#[derive(Debug)]
struct Stripe {
    /// First global slot of this stripe.
    base: usize,
    /// Slots in this stripe (the stripe's share of `max_objects`).
    capacity: usize,
    /// The stripe's ring, behind its own cheap lock.
    ring: Mutex<StripeRing>,
}

/// What a stripe promotion did, so the calling tracker can mirror the
/// private GCLOCK bookkeeping on its own history map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeSlot {
    /// Global slot index now owned by the promoted object.
    pub slot: usize,
    /// A live owner the sweep recycled; the caller must drop its exact
    /// history. `None` when the stripe had room or the slot was stale.
    pub evicted: Option<ObjectId>,
}

/// A fleet-shared doorkeeper: one lock-free sketch plus a striped GCLOCK
/// ring, borrowed by every shard-local tracker (and the guardrail's
/// ghost structures) in a pooled fleet.
pub struct SharedDoorkeeper {
    /// The pool-wide budget (sketch sizing, ring capacity, slot seed).
    budget: TrackerBudget,
    /// The fleet sketch: direct-mapped saturated last-access times.
    slots: Vec<AtomicU32>,
    /// GCLOCK reference counters, one per global ring slot.
    counts: Vec<AtomicU8>,
    /// The ring stripes, `base`-ordered, covering `0..max_objects`.
    stripes: Vec<Stripe>,
    sketch_updates: AtomicU64,
    cas_retries: AtomicU64,
    stripe_contention: AtomicU64,
}

impl std::fmt::Debug for SharedDoorkeeper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDoorkeeper")
            .field("budget", &self.budget)
            .field("slots", &self.slots.len())
            .field("stripes", &self.stripes.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl SharedDoorkeeper {
    /// Builds a pool for `budget` split into `stripes` ring stripes (one
    /// per shard). The sketch is sized exactly as a private tracker's
    /// would be for the same budget — same slot count, same seed, same
    /// bucket hash — which is what makes a 1-stripe pool decision-
    /// identical to a private [`crate::TrackerBudget`] tracker.
    ///
    /// # Panics
    ///
    /// Panics when `budget` is unbounded (a shared pool exists to cap
    /// fleet memory) or `stripes` is 0.
    pub fn new(budget: TrackerBudget, stripes: usize) -> Self {
        assert!(
            budget.is_bounded(),
            "shared doorkeeper needs a finite budget"
        );
        assert!(stripes > 0, "at least one stripe");
        let slots = budget.slots();
        let max = budget.max_objects;
        let (div, rem) = (max / stripes, max % stripes);
        let mut base = 0usize;
        let stripes = (0..stripes)
            .map(|i| {
                let capacity = div + usize::from(i < rem);
                let s = Stripe {
                    base,
                    capacity,
                    ring: Mutex::new(StripeRing {
                        objects: Vec::with_capacity(capacity),
                        hand: 0,
                    }),
                };
                base += capacity;
                s
            })
            .collect();
        SharedDoorkeeper {
            budget,
            slots: (0..slots).map(|_| AtomicU32::new(EMPTY_SLOT)).collect(),
            counts: (0..max).map(|_| AtomicU8::new(0)).collect(),
            stripes,
            sketch_updates: AtomicU64::new(0),
            cas_retries: AtomicU64::new(0),
            stripe_contention: AtomicU64::new(0),
        }
    }

    /// The budget this pool was sized for.
    pub fn budget(&self) -> TrackerBudget {
        self.budget
    }

    /// Number of ring stripes (the fleet size the pool was built for).
    pub fn stripes(&self) -> usize {
        self.stripes.len()
    }

    /// Ring capacity of stripe `stripe` (its share of `max_objects`).
    pub fn stripe_capacity(&self, stripe: usize) -> usize {
        self.stripes[stripe].capacity
    }

    /// Bytes held by the fleet sketch — paid **once** per fleet, however
    /// many shards borrow the pool.
    pub fn sketch_bytes(&self) -> usize {
        self.slots.len() * 4
    }

    /// Approximate ring bytes attributable to stripe `stripe` (object id
    /// plus counter byte per slot, matching the private ring's 9 B/slot
    /// accounting).
    pub fn stripe_ring_bytes(&self, stripe: usize) -> usize {
        self.stripes[stripe].capacity * (std::mem::size_of::<ObjectId>() + 1)
    }

    /// The sketch slot for `object` — same hash as a private tracker
    /// built from the same budget.
    pub fn bucket(&self, object: ObjectId) -> usize {
        (splitmix64(self.budget.seed ^ object.0) as usize) & (self.slots.len() - 1)
    }

    /// Reads a sketch slot ([`EMPTY_SLOT`] when nothing hashed there).
    pub fn load_slot(&self, bucket: usize) -> u32 {
        self.slots[bucket].load(Ordering::Relaxed)
    }

    /// Advances slot `bucket` to the saturated `time`, never regressing
    /// it: a slot already at a later time is left untouched (another
    /// shard got there first). Returns the prior value — [`EMPTY_SLOT`]
    /// for a first sighting, the previous last-access time otherwise —
    /// which is the caller's promotion trigger, exactly as in the
    /// private PR 8 protocol.
    pub fn update_slot(&self, bucket: usize, time: u64) -> u32 {
        let new = Self::sketch_time(time);
        let slot = &self.slots[bucket];
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            // EMPTY_SLOT is u32::MAX — numerically above every saturated
            // time — so the sentinel must be special-cased before the
            // advance-only comparison.
            if cur != EMPTY_SLOT && cur >= new {
                return cur;
            }
            match slot.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(prior) => {
                    self.sketch_updates.fetch_add(1, Ordering::Relaxed);
                    return prior;
                }
                Err(actual) => {
                    self.cas_retries.fetch_add(1, Ordering::Relaxed);
                    cur = actual;
                }
            }
        }
    }

    /// Bumps the GCLOCK counter of global `slot` (saturating at the same
    /// ceiling as the private ring). Lock-free: the tracked-object hit
    /// path calls this on every sighting.
    pub fn reference(&self, slot: usize) {
        let count = &self.counts[slot];
        let mut cur = count.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(1).min(CLOCK_MAX_COUNT);
            if next == cur {
                return;
            }
            match count.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whether stripe `stripe` still has unparked ring slots (used by
    /// snapshot loading, which promotes hottest-first and never evicts).
    pub fn stripe_has_room(&self, stripe: usize) -> bool {
        let st = &self.stripes[stripe];
        self.lock_stripe(st).objects.len() < st.capacity
    }

    /// Parks `object` in stripe `stripe`, sweeping the stripe's GCLOCK
    /// ring for a victim when the stripe is full. `is_live(owner, slot)`
    /// answers whether `owner`'s exact history still maps to global
    /// `slot` (the caller's staleness check — the pool never sees the
    /// history map). Mirrors the private `promote` + `clock_evict` pair:
    /// stale slots are taken immediately, nonzero counters are
    /// decremented and given another lap, and the first zero-count live
    /// owner is recycled and returned for the caller to forget.
    pub fn stripe_promote(
        &self,
        stripe: usize,
        object: ObjectId,
        mut is_live: impl FnMut(ObjectId, usize) -> bool,
    ) -> StripeSlot {
        let st = &self.stripes[stripe];
        let mut ring = self.lock_stripe(st);
        if ring.objects.len() < st.capacity {
            ring.objects.push(object);
            let slot = st.base + ring.objects.len() - 1;
            self.counts[slot].store(0, Ordering::Relaxed);
            return StripeSlot {
                slot,
                evicted: None,
            };
        }
        loop {
            if ring.hand >= ring.objects.len() {
                ring.hand = 0;
            }
            let local = ring.hand;
            ring.hand += 1;
            let owner = ring.objects[local];
            let slot = st.base + local;
            if !is_live(owner, slot) {
                ring.objects[local] = object;
                self.counts[slot].store(0, Ordering::Relaxed);
                return StripeSlot {
                    slot,
                    evicted: None,
                };
            }
            let count = &self.counts[slot];
            let mut cur = count.load(Ordering::Relaxed);
            let decremented = loop {
                if cur == 0 {
                    break false;
                }
                match count.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break true,
                    Err(actual) => cur = actual,
                }
            };
            if !decremented {
                ring.objects[local] = object;
                count.store(0, Ordering::Relaxed);
                return StripeSlot {
                    slot,
                    evicted: Some(owner),
                };
            }
        }
    }

    /// Wipes sketch slots last touched before `time` back to
    /// [`EMPTY_SLOT`], fleet-wide — forgotten one-hit wonders look brand
    /// new to every shard again. Racing writers win: a slot advanced to
    /// `>= time` mid-sweep is kept.
    pub fn forget_older_than(&self, time: u64) {
        let floor = Self::sketch_time(time);
        for slot in &self.slots {
            let mut cur = slot.load(Ordering::Relaxed);
            while cur != EMPTY_SLOT && cur < floor {
                match slot.compare_exchange_weak(
                    cur,
                    EMPTY_SLOT,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// A point-in-time snapshot of the pool's contention counters.
    pub fn stats(&self) -> SketchPoolStats {
        SketchPoolStats {
            sketch_updates: self.sketch_updates.load(Ordering::Relaxed),
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
            stripe_contention: self.stripe_contention.load(Ordering::Relaxed),
        }
    }

    /// Saturates a request time into a sketch slot (same ceiling as the
    /// private tracker's `sketch_time`).
    fn sketch_time(time: u64) -> u32 {
        time.min(u64::from(u32::MAX - 1)) as u32
    }

    /// Takes a stripe's ring lock, counting the (rare) contended path.
    fn lock_stripe<'a>(&self, stripe: &'a Stripe) -> std::sync::MutexGuard<'a, StripeRing> {
        match stripe.ring.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.stripe_contention.fetch_add(1, Ordering::Relaxed);
                stripe.ring.lock().unwrap_or_else(PoisonError::into_inner)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget(max_objects: usize) -> TrackerBudget {
        TrackerBudget::capped(max_objects)
    }

    #[test]
    fn sketch_sized_like_a_private_tracker() {
        let b = budget(100);
        let pool = SharedDoorkeeper::new(b, 4);
        // Auto sizing: smallest power of two >= 4 * max_objects.
        assert_eq!(pool.sketch_bytes(), 512 * 4);
        let fixed = TrackerBudget {
            sketch_bits: 10,
            ..b
        };
        assert_eq!(SharedDoorkeeper::new(fixed, 1).sketch_bytes(), 1024 * 4);
    }

    #[test]
    fn stripes_partition_the_budget_exactly() {
        let pool = SharedDoorkeeper::new(budget(10), 4);
        let caps: Vec<usize> = (0..4).map(|i| pool.stripe_capacity(i)).collect();
        assert_eq!(caps, vec![3, 3, 2, 2]);
        assert_eq!(caps.iter().sum::<usize>(), 10);
        // Ring bytes mirror the private 9 B/slot accounting.
        assert_eq!(pool.stripe_ring_bytes(0), 3 * 9);
    }

    #[test]
    fn update_slot_reports_priors_and_never_regresses() {
        let pool = SharedDoorkeeper::new(budget(8), 1);
        let b = pool.bucket(ObjectId(7));
        assert_eq!(pool.update_slot(b, 100), EMPTY_SLOT); // first sighting
        assert_eq!(pool.update_slot(b, 250), 100); // second: prior returned
                                                   // A stale writer (an older time from a lagging shard) neither
                                                   // regresses the slot nor looks like a first sighting.
        assert_eq!(pool.update_slot(b, 50), 250);
        assert_eq!(pool.load_slot(b), 250);
        assert_eq!(pool.stats().sketch_updates, 2);
    }

    #[test]
    fn stripe_promote_fills_then_recycles_zero_count_owners() {
        let pool = SharedDoorkeeper::new(budget(2), 1);
        let a = pool.stripe_promote(0, ObjectId(1), |_, _| true);
        let b = pool.stripe_promote(0, ObjectId(2), |_, _| true);
        assert_eq!((a.slot, a.evicted), (0, None));
        assert_eq!((b.slot, b.evicted), (1, None));
        // Reference object 1 once: the sweep decrements it, passes on,
        // and recycles the idle object 2 instead.
        pool.reference(0);
        let c = pool.stripe_promote(0, ObjectId(3), |_, _| true);
        assert_eq!(c.evicted, Some(ObjectId(2)));
        assert_eq!(c.slot, 1);
    }

    #[test]
    fn stale_slots_are_taken_without_eviction() {
        let pool = SharedDoorkeeper::new(budget(1), 1);
        pool.stripe_promote(0, ObjectId(1), |_, _| true);
        // Owner 1 no longer live (caller forgot it): slot reused freely.
        let s = pool.stripe_promote(0, ObjectId(2), |_, _| false);
        assert_eq!(s.evicted, None);
        assert_eq!(s.slot, 0);
    }

    #[test]
    fn reference_saturates_at_the_clock_ceiling() {
        let pool = SharedDoorkeeper::new(budget(1), 1);
        pool.stripe_promote(0, ObjectId(1), |_, _| true);
        for _ in 0..10 {
            pool.reference(0);
        }
        // Ten references saturate at CLOCK_MAX_COUNT, so a single-slot
        // sweep burns through at most that many laps before recycling —
        // the same bounded-sweep guarantee as the private ring.
        let s = pool.stripe_promote(0, ObjectId(2), |o, _| o == ObjectId(1));
        assert_eq!(s.evicted, Some(ObjectId(1)));
        assert_eq!(s.slot, 0);
    }

    #[test]
    fn forget_wipes_only_older_slots() {
        let pool = SharedDoorkeeper::new(budget(8), 1);
        let b1 = pool.bucket(ObjectId(1));
        let b2 = pool.bucket(ObjectId(2));
        pool.update_slot(b1, 10);
        pool.update_slot(b2, 90);
        pool.forget_older_than(50);
        assert_eq!(pool.load_slot(b1), EMPTY_SLOT);
        assert_eq!(pool.load_slot(b2), 90);
    }

    #[test]
    #[should_panic(expected = "finite budget")]
    fn unbounded_budget_rejected() {
        SharedDoorkeeper::new(TrackerBudget::default(), 1);
    }
}
