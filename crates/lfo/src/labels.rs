//! Joining feature snapshots with OPT's decisions into training sets.
//!
//! For each request of a window we need (a) the online feature vector as it
//! would have been observed at that request and (b) OPT's admit/don't-admit
//! decision as the label. The free-cache-bytes feature is computed under
//! *OPT's* occupancy schedule (the admission decisions determine exactly
//! which bytes OPT holds at any time): this is the quantity the label
//! actually correlates with — "if [evictions free up space], OPT and LFO
//! are more likely to admit a new object" (§2.2).

use cdn_trace::{ObjectId, Request};
use gbdt::Dataset;
use opt::OptResult;
use std::collections::HashMap;

use crate::features::FeatureTracker;

/// Builds a training set for one window.
///
/// `tracker` must carry the history state from *before* the window (pass a
/// fresh tracker for the first window); it is advanced across the window as
/// a side effect, ready for the next one.
///
/// `cache_size` is OPT's capacity, used to derive the free-bytes feature
/// from OPT's occupancy schedule.
///
/// # Panics
///
/// Panics if `opt.len() != requests.len()`.
pub fn build_training_set(
    requests: &[Request],
    opt: &OptResult,
    tracker: &mut FeatureTracker,
    cache_size: u64,
) -> Dataset {
    assert_eq!(
        opt.len(),
        requests.len(),
        "OPT result must cover the window"
    );
    let mut rows: Vec<Vec<f32>> = Vec::with_capacity(requests.len());
    let mut labels: Vec<f32> = Vec::with_capacity(requests.len());

    // Replay OPT's occupancy: an object occupies space from a request where
    // OPT admits it until its next request where OPT does not.
    let mut resident: HashMap<ObjectId, u64> = HashMap::new();
    let mut used = 0u64;

    for (k, r) in requests.iter().enumerate() {
        let free = cache_size.saturating_sub(used);
        rows.push(tracker.observe(r, free));
        labels.push(if opt.admit[k] { 1.0 } else { 0.0 });

        // Advance OPT's occupancy.
        let was_resident = resident.contains_key(&r.object);
        if opt.admit[k] && !was_resident {
            resident.insert(r.object, r.size);
            used += r.size;
        } else if !opt.admit[k] && was_resident {
            let size = resident.remove(&r.object).expect("resident");
            used -= size;
        }
    }

    Dataset::from_rows(rows, labels).expect("windows are non-empty and features finite")
}

/// Builds only the feature matrix for a window (no labels) — used to
/// evaluate a trained model's predictions against the *next* window's OPT.
/// The free-bytes feature uses the same OPT-schedule convention.
pub fn build_feature_rows(
    requests: &[Request],
    opt: &OptResult,
    tracker: &mut FeatureTracker,
    cache_size: u64,
) -> Vec<Vec<f32>> {
    assert_eq!(opt.len(), requests.len());
    let mut rows = Vec::with_capacity(requests.len());
    let mut resident: HashMap<ObjectId, u64> = HashMap::new();
    let mut used = 0u64;
    for (k, r) in requests.iter().enumerate() {
        let free = cache_size.saturating_sub(used);
        rows.push(tracker.observe(r, free));
        let was_resident = resident.contains_key(&r.object);
        if opt.admit[k] && !was_resident {
            resident.insert(r.object, r.size);
            used += r.size;
        } else if !opt.admit[k] && was_resident {
            let size = resident.remove(&r.object).expect("resident");
            used -= size;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::example;
    use cdn_trace::CostModel;
    use opt::{compute_opt, OptConfig};

    #[test]
    fn training_set_aligns_rows_and_labels() {
        let trace = example::figure3_trace();
        let opt = compute_opt(trace.requests(), &OptConfig::bhr(1_000)).unwrap();
        let mut tracker = FeatureTracker::new(4, CostModel::ByteHitRatio);
        let data = build_training_set(trace.requests(), &opt, &mut tracker, 1_000);
        assert_eq!(data.num_rows(), 12);
        assert_eq!(data.num_features(), 3 + 4);
        // Labels match OPT's decisions.
        for (k, &admit) in opt.admit.iter().enumerate() {
            assert_eq!(data.label(k) >= 0.5, admit, "label mismatch at {k}");
        }
    }

    #[test]
    fn free_bytes_reflects_opt_occupancy() {
        // Infinite-ish cache: OPT admits everything reused. Free bytes must
        // decrease as OPT's residency grows.
        let trace = example::figure3_trace();
        let cache = 1_000u64;
        let opt = compute_opt(trace.requests(), &OptConfig::bhr(cache)).unwrap();
        let mut tracker = FeatureTracker::new(4, CostModel::ByteHitRatio);
        let data = build_training_set(trace.requests(), &opt, &mut tracker, cache);
        // Request 0 sees an empty cache.
        assert_eq!(data.value(2, 0), cache as f32);
        // After admitting a (3), b (1), c (1), request 3 sees free = 995.
        assert_eq!(data.value(2, 3), 995.0);
    }

    #[test]
    fn tracker_carries_across_windows() {
        let trace = example::figure3_trace();
        let reqs = trace.requests();
        let cache = 1_000u64;
        let opt_a = compute_opt(&reqs[..6], &OptConfig::bhr(cache)).unwrap();
        let opt_b = compute_opt(&reqs[6..], &OptConfig::bhr(cache)).unwrap();
        let mut tracker = FeatureTracker::new(4, CostModel::ByteHitRatio);
        let _ = build_training_set(&reqs[..6], &opt_a, &mut tracker, cache);
        let rows_b = build_feature_rows(&reqs[6..], &opt_b, &mut tracker, cache);
        // First request of window B is `c` at t=6; its previous request was
        // t=2 in window A → gap 1 = 4, visible only if history carried over.
        assert_eq!(rows_b[0][3], 4.0);
    }

    #[test]
    #[should_panic(expected = "must cover the window")]
    fn mismatched_lengths_rejected() {
        let trace = example::figure3_trace();
        let opt = compute_opt(trace.requests(), &OptConfig::bhr(10)).unwrap();
        let mut tracker = FeatureTracker::new(4, CostModel::ByteHitRatio);
        build_training_set(&trace.requests()[..5], &opt, &mut tracker, 10);
    }
}
