//! Hierarchical (tiered) caching — the paper's §5 extension.
//!
//! "A key idea to simplify this problem is to use hierarchical models. For
//! example, we could apply our 'single cache' model to the aggregate cache
//! space of a CDN server (RAM, SSD, HDD) [...]. We first learn whether to
//! cache an object at all. A second level of the model then learns rules on
//! where to place the object, e.g., based on storage characteristics such
//! as write endurance, read delay/throughput, or utilization."
//!
//! Implementation of exactly that two-level structure:
//!
//! - **Level 1** is the standard LFO admission decision: the predicted
//!   likelihood that OPT caches the request, gated by the cutoff, over the
//!   *aggregate* capacity of all tiers.
//! - **Level 2** chooses a tier for admitted objects. The default
//!   [`Placement::Learned`] predicts the object's *re-reference interval*
//!   (how soon it will be requested again, learned from the previous
//!   window's observed next-use distances with the same GBDT machinery)
//!   and maps soon-again objects to the fastest tier. Heuristic and
//!   pin-to-one-tier placements are provided as baselines.
//!
//! Each tier evicts by predicted likelihood, exactly like the single-level
//! [`crate::LfoCache`]; RAM evictions *demote* to the next tier rather
//! than leaving the hierarchy (and so on down), mirroring production
//! multi-tier CDN caches. The report tracks per-tier hits and the implied
//! mean read latency and per-tier write volume (the "write endurance"
//! characteristic the paper names).

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use cdn_trace::{ObjectId, Request};
use gbdt::Model;

use cdn_cache::cache::{CachePolicy, RequestOutcome};

use crate::config::LfoConfig;
use crate::features::FeatureTracker;

/// Characteristics of one storage tier.
#[derive(Clone, Debug)]
pub struct TierSpec {
    /// Label ("ram", "ssd", "hdd").
    pub name: &'static str,
    /// Capacity in bytes.
    pub capacity: u64,
    /// Mean read latency in microseconds (for the latency report).
    pub read_latency_us: f64,
    /// Relative write-wear cost (0 = free, e.g. RAM; SSD pays the most).
    pub write_wear: f64,
}

impl TierSpec {
    /// A RAM / SSD / HDD lineup with capacities split `ram:ssd:hdd`.
    pub fn standard(ram: u64, ssd: u64, hdd: u64) -> Vec<TierSpec> {
        vec![
            TierSpec {
                name: "ram",
                capacity: ram,
                read_latency_us: 1.0,
                write_wear: 0.0,
            },
            TierSpec {
                name: "ssd",
                capacity: ssd,
                read_latency_us: 100.0,
                write_wear: 1.0,
            },
            TierSpec {
                name: "hdd",
                capacity: hdd,
                read_latency_us: 8_000.0,
                write_wear: 0.1,
            },
        ]
    }
}

/// Level-2 placement strategies.
pub enum Placement {
    /// Everything goes to one tier (a single-level baseline).
    Pin(usize),
    /// Size heuristic: smallest objects to the fastest tier, under
    /// per-tier size thresholds.
    SizeThresholds(Vec<u64>),
    /// Learned: a regression-ish classifier per tier boundary predicting
    /// whether the object's next re-reference is within that tier's
    /// "speed class"; trained from the previous window's next-use
    /// distances via [`train_placement_model`].
    Learned(Arc<PlacementModel>),
}

/// A learned placement model: one binary GBDT per tier boundary.
///
/// `boundary_models[i]` predicts "the object's next re-reference distance
/// is within `distance_boundaries[i]` requests"; the object is placed in
/// the first (fastest) tier whose boundary model fires.
pub struct PlacementModel {
    /// Next-use distance boundaries, ascending, one per tier except the last.
    pub distance_boundaries: Vec<u64>,
    /// One model per boundary.
    pub boundary_models: Vec<Model>,
}

impl PlacementModel {
    /// Chooses a tier index for an object with the given feature vector.
    pub fn place(&self, features: &[f32]) -> usize {
        for (tier, model) in self.boundary_models.iter().enumerate() {
            if model.predict_proba(features) >= 0.5 {
                return tier;
            }
        }
        self.boundary_models.len()
    }
}

/// Trains a placement model from a window of requests: labels are the
/// observed next-use distances (objects re-referenced within
/// `boundaries[i]` requests are positives for boundary `i`).
pub fn train_placement_model(
    requests: &[Request],
    boundaries: Vec<u64>,
    config: &LfoConfig,
) -> PlacementModel {
    assert!(!boundaries.is_empty());
    assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
    let next_use = opt::belady::next_use_indices(requests);
    let mut tracker = config.tracker();
    let rows: Vec<Vec<f32>> = requests.iter().map(|r| tracker.observe(r, 0)).collect();

    let mut boundary_models = Vec::with_capacity(boundaries.len());
    for &b in &boundaries {
        let labels: Vec<f32> = next_use
            .iter()
            .enumerate()
            .map(|(k, &nu)| (nu != usize::MAX && (nu - k) as u64 <= b) as u8 as f32)
            .collect();
        let data = gbdt::Dataset::from_rows(rows.clone(), labels)
            .expect("windows are non-empty and finite");
        boundary_models.push(gbdt::train(&data, &config.gbdt));
    }
    PlacementModel {
        distance_boundaries: boundaries,
        boundary_models,
    }
}

/// Priority wrapper (ascending order = eviction order).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Priority(f64);
impl Eq for Priority {}
impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Tier {
    spec: TierSpec,
    used: u64,
    queue: BTreeSet<(Priority, u64, ObjectId)>,
    entries: HashMap<ObjectId, (Priority, u64, u64)>, // priority, tiebreak, size
}

impl Tier {
    fn new(spec: TierSpec) -> Self {
        Tier {
            spec,
            used: 0,
            queue: BTreeSet::new(),
            entries: HashMap::new(),
        }
    }

    fn insert(&mut self, object: ObjectId, priority: f64, tiebreak: u64, size: u64) {
        self.entries
            .insert(object, (Priority(priority), tiebreak, size));
        self.queue.insert((Priority(priority), tiebreak, object));
        self.used += size;
    }

    fn remove(&mut self, object: ObjectId) -> Option<u64> {
        let (p, t, size) = self.entries.remove(&object)?;
        self.queue.remove(&(p, t, object));
        self.used -= size;
        Some(size)
    }

    fn evict_min(&mut self) -> (ObjectId, f64, u64) {
        let &(p, t, victim) = self.queue.iter().next().expect("nonempty tier");
        self.queue.remove(&(p, t, victim));
        let (_, _, size) = self.entries.remove(&victim).expect("entry");
        self.used -= size;
        (victim, p.0, size)
    }
}

/// Per-tier and aggregate statistics of a tiered run.
#[derive(Clone, Debug, Default)]
pub struct TierReport {
    /// Hits served by each tier.
    pub hits_per_tier: Vec<u64>,
    /// Bytes served by each tier.
    pub hit_bytes_per_tier: Vec<u64>,
    /// Bytes written into each tier (admissions + demotions) — the
    /// endurance-relevant quantity.
    pub bytes_written_per_tier: Vec<u64>,
    /// Total requests.
    pub requests: u64,
    /// Total bytes requested.
    pub total_bytes: u64,
}

impl TierReport {
    /// Mean read latency over hits (misses excluded), in microseconds.
    pub fn mean_hit_latency_us(&self, specs: &[TierSpec]) -> f64 {
        let total_hits: u64 = self.hits_per_tier.iter().sum();
        if total_hits == 0 {
            return 0.0;
        }
        self.hits_per_tier
            .iter()
            .zip(specs)
            .map(|(&h, s)| h as f64 * s.read_latency_us)
            .sum::<f64>()
            / total_hits as f64
    }

    /// Total wear-weighted write volume.
    pub fn weighted_write_wear(&self, specs: &[TierSpec]) -> f64 {
        self.bytes_written_per_tier
            .iter()
            .zip(specs)
            .map(|(&b, s)| b as f64 * s.write_wear)
            .sum()
    }

    /// Aggregate byte hit ratio.
    pub fn bhr(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.hit_bytes_per_tier.iter().sum::<u64>() as f64 / self.total_bytes as f64
        }
    }
}

/// The two-level tiered LFO cache.
pub struct TieredLfoCache {
    config: LfoConfig,
    tiers: Vec<Tier>,
    admission_model: Option<Arc<Model>>,
    placement: Placement,
    tracker: FeatureTracker,
    /// object → tier index.
    location: HashMap<ObjectId, usize>,
    tick: u64,
    /// Running statistics.
    pub report: TierReport,
}

impl TieredLfoCache {
    /// Creates a tiered cache.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or a pinned/threshold placement refers to
    /// a tier that does not exist.
    pub fn new(specs: Vec<TierSpec>, placement: Placement, config: LfoConfig) -> Self {
        assert!(!specs.is_empty(), "need at least one tier");
        match &placement {
            Placement::Pin(t) => assert!(*t < specs.len(), "pinned tier out of range"),
            Placement::SizeThresholds(th) => {
                assert_eq!(th.len(), specs.len() - 1, "need one threshold per boundary")
            }
            Placement::Learned(m) => assert_eq!(
                m.boundary_models.len(),
                specs.len() - 1,
                "need one boundary model per tier boundary"
            ),
        }
        let tracker = config.tracker();
        let num_tiers = specs.len();
        TieredLfoCache {
            config,
            tiers: specs.into_iter().map(Tier::new).collect(),
            admission_model: None,
            placement,
            tracker,
            location: HashMap::new(),
            tick: 0,
            report: TierReport {
                hits_per_tier: vec![0; num_tiers],
                hit_bytes_per_tier: vec![0; num_tiers],
                bytes_written_per_tier: vec![0; num_tiers],
                ..Default::default()
            },
        }
    }

    /// Installs the level-1 admission model.
    pub fn install_admission_model(&mut self, model: Arc<Model>) {
        self.admission_model = Some(model);
    }

    /// The tier specs.
    pub fn specs(&self) -> Vec<TierSpec> {
        self.tiers.iter().map(|t| t.spec.clone()).collect()
    }

    /// Total bytes across all tiers.
    pub fn used(&self) -> u64 {
        self.tiers.iter().map(|t| t.used).sum()
    }

    /// Whether the object is resident in any tier.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.location.contains_key(&object)
    }

    /// Which tier holds `object`, if any.
    pub fn tier_of(&self, object: ObjectId) -> Option<usize> {
        self.location.get(&object).copied()
    }

    fn choose_tier(&self, features: &[f32], size: u64) -> usize {
        match &self.placement {
            Placement::Pin(t) => *t,
            Placement::SizeThresholds(thresholds) => thresholds
                .iter()
                .position(|&limit| size <= limit)
                .unwrap_or(thresholds.len()),
            Placement::Learned(model) => model.place(features),
        }
    }

    /// Inserts into `tier`, demoting evicted objects down the hierarchy.
    fn insert_with_demotion(&mut self, tier: usize, object: ObjectId, priority: f64, size: u64) {
        // Objects larger than the tier get bumped to the next one down.
        let mut tier = tier;
        while tier < self.tiers.len() && size > self.tiers[tier].spec.capacity {
            tier += 1;
        }
        if tier >= self.tiers.len() {
            self.location.remove(&object);
            return;
        }
        self.tick += 1;
        self.tiers[tier].insert(object, priority, self.tick, size);
        self.location.insert(object, tier);
        self.report.bytes_written_per_tier[tier] += size;
        while self.tiers[tier].used > self.tiers[tier].spec.capacity {
            let (victim, vp, vsize) = self.tiers[tier].evict_min();
            self.location.remove(&victim);
            if tier + 1 < self.tiers.len() {
                self.insert_with_demotion(tier + 1, victim, vp, vsize);
            }
        }
    }
}

impl CachePolicy for TieredLfoCache {
    fn name(&self) -> &'static str {
        "LFO-Tiered"
    }

    fn capacity(&self) -> u64 {
        self.tiers.iter().map(|t| t.spec.capacity).sum()
    }

    fn used(&self) -> u64 {
        TieredLfoCache::used(self)
    }

    fn contains(&self, object: ObjectId) -> bool {
        TieredLfoCache::contains(self, object)
    }

    fn len(&self) -> usize {
        self.location.len()
    }

    fn handle(&mut self, request: &Request) -> RequestOutcome {
        self.tick += 1;
        let free = self.capacity() - TieredLfoCache::used(self);
        let features = self.tracker.observe(request, free);
        let likelihood = self
            .admission_model
            .as_ref()
            .map(|m| m.predict_proba(&features))
            .unwrap_or_else(|| 1.0 - 1.0 / (1.0 + self.tick as f64));

        self.report.requests += 1;
        self.report.total_bytes += request.size;

        if let Some(&tier) = self.location.get(&request.object) {
            self.report.hits_per_tier[tier] += 1;
            self.report.hit_bytes_per_tier[tier] += request.size;
            // Re-score and re-place on every hit (a hot object can be
            // promoted into RAM here — the level-2 decision re-fires).
            self.tiers[tier].remove(request.object);
            let target = self.choose_tier(&features, request.size);
            self.insert_with_demotion(target, request.object, likelihood, request.size);
            return RequestOutcome::Hit;
        }

        let admit = match self.admission_model {
            Some(_) => likelihood >= self.config.cutoff,
            None => true,
        };
        if !admit || request.size > self.capacity() {
            return RequestOutcome::Miss { admitted: false };
        }
        let target = self.choose_tier(&features, request.size);
        self.insert_with_demotion(target, request.object, likelihood, request.size);
        RequestOutcome::Miss {
            admitted: self.location.contains_key(&request.object),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{GeneratorConfig, TraceGenerator};

    fn specs() -> Vec<TierSpec> {
        TierSpec::standard(1_000, 10_000, 100_000)
    }

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    #[test]
    fn pinned_placement_uses_one_tier() {
        let mut c = TieredLfoCache::new(specs(), Placement::Pin(1), LfoConfig::default());
        c.handle(&req(0, 1, 500));
        assert_eq!(c.tier_of(ObjectId(1)), Some(1));
        assert_eq!(c.used(), 500);
    }

    #[test]
    fn size_thresholds_route_by_size() {
        let placement = Placement::SizeThresholds(vec![100, 5_000]);
        let mut c = TieredLfoCache::new(specs(), placement, LfoConfig::default());
        c.handle(&req(0, 1, 50)); // → ram
        c.handle(&req(1, 2, 1_000)); // → ssd
        c.handle(&req(2, 3, 50_000)); // → hdd
        assert_eq!(c.tier_of(ObjectId(1)), Some(0));
        assert_eq!(c.tier_of(ObjectId(2)), Some(1));
        assert_eq!(c.tier_of(ObjectId(3)), Some(2));
    }

    #[test]
    fn overflow_demotes_down_the_hierarchy() {
        let placement = Placement::Pin(0);
        let mut c = TieredLfoCache::new(specs(), placement, LfoConfig::default());
        // RAM holds 1_000 bytes; the third object overflows it and the
        // weakest RAM resident demotes to SSD, not out of the cache.
        c.handle(&req(0, 1, 400));
        c.handle(&req(1, 2, 400));
        c.handle(&req(2, 3, 400));
        assert_eq!(c.len(), 3);
        let in_ssd = (1..=3)
            .filter(|&i| c.tier_of(ObjectId(i)) == Some(1))
            .count();
        assert_eq!(in_ssd, 1, "exactly one object demoted to ssd");
        assert!(c.tiers[0].used <= 1_000);
    }

    #[test]
    fn oversized_objects_skip_to_a_fitting_tier() {
        let mut c = TieredLfoCache::new(specs(), Placement::Pin(0), LfoConfig::default());
        c.handle(&req(0, 1, 5_000)); // bigger than RAM, fits SSD
        assert_eq!(c.tier_of(ObjectId(1)), Some(1));
    }

    #[test]
    fn per_tier_capacities_always_respected() {
        let placement = Placement::SizeThresholds(vec![100, 5_000]);
        let mut c = TieredLfoCache::new(specs(), placement, LfoConfig::default());
        for i in 0..2_000u64 {
            let size = match i % 3 {
                0 => 60,
                1 => 900,
                _ => 20_000,
            };
            c.handle(&req(i, i % 97, size));
            for tier in &c.tiers {
                assert!(tier.used <= tier.spec.capacity, "{} over", tier.spec.name);
            }
        }
    }

    #[test]
    fn report_tracks_hits_per_tier() {
        let placement = Placement::SizeThresholds(vec![100, 5_000]);
        let mut c = TieredLfoCache::new(specs(), placement, LfoConfig::default());
        c.handle(&req(0, 1, 50));
        c.handle(&req(1, 1, 50)); // RAM hit
        c.handle(&req(2, 2, 1_000));
        c.handle(&req(3, 2, 1_000)); // SSD hit
        assert_eq!(c.report.hits_per_tier, vec![1, 1, 0]);
        assert!(c.report.mean_hit_latency_us(&c.specs()) > 1.0);
        assert!(c.report.bhr() > 0.0);
    }

    #[test]
    fn learned_placement_sends_soon_again_objects_to_fast_tiers() {
        // Train on a window where small objects re-reference quickly and
        // large ones slowly, then check placement follows.
        let trace = TraceGenerator::new(GeneratorConfig::small(3, 8_000)).generate();
        let config = LfoConfig::default();
        let model = train_placement_model(trace.requests(), vec![100, 2_000], &config);
        assert_eq!(model.boundary_models.len(), 2);
        // The model must fire "fast tier" for at least some requests and
        // "slow" for others (not constant).
        let mut tracker = config.tracker();
        let mut tiers_seen = std::collections::HashSet::new();
        for r in trace.requests().iter().take(2_000) {
            let f = tracker.observe(r, 0);
            tiers_seen.insert(model.place(&f));
        }
        assert!(
            tiers_seen.len() >= 2,
            "placement is constant: {tiers_seen:?}"
        );
    }

    #[test]
    fn learned_tiering_beats_pin_to_slowest_on_latency() {
        let trace = TraceGenerator::new(GeneratorConfig::small(4, 20_000)).generate();
        let reqs = trace.requests();
        let config = LfoConfig::default();
        let placement_model = Arc::new(train_placement_model(
            &reqs[..10_000],
            vec![500, 5_000],
            &config,
        ));

        let stats = cdn_trace::TraceStats::from_requests(reqs);
        let total = stats.cache_size_for_fraction(0.15);
        let tier_specs = TierSpec::standard(total / 10, total * 3 / 10, total * 6 / 10);

        let mut learned = TieredLfoCache::new(
            tier_specs.clone(),
            Placement::Learned(placement_model),
            config.clone(),
        );
        let mut pinned = TieredLfoCache::new(tier_specs.clone(), Placement::Pin(2), config.clone());
        for r in &reqs[10_000..] {
            learned.handle(r);
            pinned.handle(r);
        }
        let l = learned.report.mean_hit_latency_us(&tier_specs);
        let p = pinned.report.mean_hit_latency_us(&tier_specs);
        assert!(
            l < p,
            "learned placement latency {l} not better than pin-to-hdd {p}"
        );
    }
}
