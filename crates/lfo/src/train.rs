//! Training LFO's classifier (paper §2.3).

use gbdt::{train, Confusion, Dataset, Model};

use crate::config::LfoConfig;

/// A model trained on one window, with its self-reported quality.
#[derive(Clone, Debug)]
pub struct TrainedWindow {
    /// The boosted-tree classifier.
    pub model: Model,
    /// Training-set accuracy at the configured cutoff.
    pub train_accuracy: f64,
    /// Training-set confusion at the configured cutoff.
    pub train_confusion: Confusion,
    /// Fraction of positive labels (OPT admissions) in the window.
    pub positive_fraction: f64,
    /// Predicted probabilities on the training set (for cutoff tuning).
    pub train_probs: Vec<f64>,
    /// Training labels (paired with `train_probs`).
    pub train_labels: Vec<f32>,
}

/// Trains the LFO classifier for one window's training set.
pub fn train_window(data: &Dataset, config: &LfoConfig) -> TrainedWindow {
    let model = train(data, &config.gbdt);
    let probs: Vec<f64> = (0..data.num_rows())
        .map(|r| model.predict_proba(&data.row(r)))
        .collect();
    let confusion = Confusion::at_cutoff(&probs, data.labels(), config.cutoff);
    let positives = data.labels().iter().filter(|&&y| y >= 0.5).count();
    TrainedWindow {
        model,
        train_accuracy: 1.0 - confusion.error_fraction(),
        train_confusion: confusion,
        positive_fraction: positives as f64 / data.num_rows() as f64,
        train_probs: probs,
        train_labels: data.labels().to_vec(),
    }
}

/// The cutoff that (approximately) equalizes false-positive and
/// false-negative rates over `(probs, labels)` — §3's observation that
/// raising the cutoff to about 0.65 "equalizes false negative and false
/// positive rate" and makes LFO less conservative.
pub fn equalize_cutoff(probs: &[f64], labels: &[f32]) -> f64 {
    let mut best = 0.5;
    let mut best_gap = f64::INFINITY;
    for step in 1..100 {
        let cutoff = step as f64 / 100.0;
        let c = Confusion::at_cutoff(probs, labels, cutoff);
        let gap = (c.false_positive_fraction() - c.false_negative_fraction()).abs();
        if gap < best_gap {
            best_gap = gap;
            best = cutoff;
        }
    }
    best
}

/// Evaluates a trained model against another window's labeled data,
/// returning the confusion at `cutoff` (the Figure 5 "prediction error" is
/// `error_fraction()` of this).
pub fn evaluate(model: &Model, data: &Dataset, cutoff: f64) -> Confusion {
    let probs: Vec<f64> = (0..data.num_rows())
        .map(|r| model.predict_proba(&data.row(r)))
        .collect();
    Confusion::at_cutoff(&probs, data.labels(), cutoff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureTracker;
    use crate::labels::build_training_set;
    use cdn_trace::{GeneratorConfig, TraceGenerator};
    use opt::{compute_opt, OptConfig};

    fn window_dataset(seed: u64, n: u64, cache: u64) -> Dataset {
        let trace = TraceGenerator::new(GeneratorConfig::small(seed, n)).generate();
        let opt = compute_opt(trace.requests(), &OptConfig::bhr(cache)).unwrap();
        let cfg = LfoConfig::default();
        let mut tracker = FeatureTracker::new(cfg.num_gaps, cfg.cost_model);
        build_training_set(trace.requests(), &opt, &mut tracker, cache)
    }

    #[test]
    fn training_reaches_high_accuracy_on_its_own_window() {
        let data = window_dataset(1, 5_000, 4 * 1024 * 1024);
        let trained = train_window(&data, &LfoConfig::default());
        // The paper reports >93% test accuracy; training accuracy on the
        // same window must be at least that.
        assert!(
            trained.train_accuracy > 0.9,
            "train accuracy {}",
            trained.train_accuracy
        );
    }

    #[test]
    fn generalizes_to_the_next_window() {
        // Train on window 1, evaluate on window 2 of the same trace.
        let cache = 4 * 1024 * 1024;
        let trace = TraceGenerator::new(GeneratorConfig::small(2, 10_000)).generate();
        let reqs = trace.requests();
        let cfg = LfoConfig::default();
        let mut tracker = FeatureTracker::new(cfg.num_gaps, cfg.cost_model);
        let opt_a = compute_opt(&reqs[..5_000], &OptConfig::bhr(cache)).unwrap();
        let data_a = build_training_set(&reqs[..5_000], &opt_a, &mut tracker, cache);
        let opt_b = compute_opt(&reqs[5_000..], &OptConfig::bhr(cache)).unwrap();
        let data_b = build_training_set(&reqs[5_000..], &opt_b, &mut tracker, cache);

        let trained = train_window(&data_a, &cfg);
        let test = evaluate(&trained.model, &data_b, cfg.cutoff);
        let error = test.error_fraction();
        assert!(error < 0.25, "test error {error}");
    }

    #[test]
    fn equalize_cutoff_balances_error_rates() {
        // Probabilities skewed high: many negatives score above 0.5, so the
        // balancing cutoff must rise above 0.5.
        let probs: Vec<f64> = (0..100).map(|i| 0.3 + 0.6 * (i as f64 / 100.0)).collect();
        let labels: Vec<f32> = (0..100).map(|i| (i >= 70) as u8 as f32).collect();
        let c = equalize_cutoff(&probs, &labels);
        assert!(c > 0.5, "cutoff {c}");
        let conf = Confusion::at_cutoff(&probs, &labels, c);
        assert!(
            (conf.false_positive_fraction() - conf.false_negative_fraction()).abs() < 0.05,
            "rates not equalized at {c}"
        );
    }

    #[test]
    fn confusion_counts_cover_all_rows() {
        let data = window_dataset(3, 2_000, 1024 * 1024);
        let trained = train_window(&data, &LfoConfig::default());
        assert_eq!(trained.train_confusion.total(), data.num_rows());
        assert!((0.0..=1.0).contains(&trained.positive_fraction));
    }
}
