//! Training LFO's classifier (paper §2.3).

use gbdt::{train, train_continued, BinMap, Confusion, Dataset, EngineKind, Model, PackedScorer};

use crate::config::{LfoConfig, RetrainConfig};

/// A model trained on one window, with its self-reported quality.
#[derive(Clone, Debug)]
pub struct TrainedWindow {
    /// The boosted-tree classifier.
    pub model: Model,
    /// Training-set accuracy at the configured cutoff.
    pub train_accuracy: f64,
    /// Training-set confusion at the configured cutoff.
    pub train_confusion: Confusion,
    /// Fraction of positive labels (OPT admissions) in the window.
    pub positive_fraction: f64,
    /// Predicted probabilities on the training set (for cutoff tuning).
    pub train_probs: Vec<f64>,
    /// Training labels (paired with `train_probs`).
    pub train_labels: Vec<f32>,
}

/// Trains the LFO classifier for one window's training set.
pub fn train_window(data: &Dataset, config: &LfoConfig) -> TrainedWindow {
    let model = train(data, &config.gbdt);
    finish_window(model, data, config)
}

/// Continues boosting from `base` for one window: the incumbent is capped
/// to `retrain.max_trees - retrain.delta_trees` newest trees (when a cap
/// is set), then `retrain.delta_trees` new trees are appended with the
/// score vector seeded from the incumbent's margins. `bin_map` supplies
/// the frozen quantile grid fitted at the last full rebuild.
pub fn train_window_continued(
    base: &Model,
    data: &Dataset,
    config: &LfoConfig,
    retrain: &RetrainConfig,
    bin_map: Option<&BinMap>,
) -> TrainedWindow {
    let mut params = config.gbdt.clone();
    params.num_iterations = retrain.delta_trees;
    let capped;
    let base = if retrain.max_trees > 0
        && base.trees().len() + retrain.delta_trees > retrain.max_trees
    {
        capped = base.retained_newest(retrain.max_trees.saturating_sub(retrain.delta_trees).max(1));
        &capped
    } else {
        base
    };
    let model = train_continued(base, data, &params, bin_map);
    finish_window(model, data, config)
}

/// Scores the training window (flat batch inference — bit-equal to the
/// recursive walk) and assembles the self-reported quality numbers.
fn finish_window(model: Model, data: &Dataset, config: &LfoConfig) -> TrainedWindow {
    let probs = batch_probs(&model, data);
    let confusion = Confusion::at_cutoff(&probs, data.labels(), config.cutoff);
    let positives = data.labels().iter().filter(|&&y| y >= 0.5).count();
    TrainedWindow {
        model,
        train_accuracy: 1.0 - confusion.error_fraction(),
        train_confusion: confusion,
        positive_fraction: positives as f64 / data.num_rows() as f64,
        train_probs: probs,
        train_labels: data.labels().to_vec(),
    }
}

/// Batch probabilities over a whole dataset through the flat layout —
/// bit-equal to per-row [`Model::predict_proba`]. Packs and chunks through
/// [`gbdt::PackedScorer`], the same batched entry point the serving
/// throughput harness uses, so there is exactly one copy of the batching
/// loop across the codebase.
fn batch_probs(model: &Model, data: &Dataset) -> Vec<f64> {
    let rows: Vec<Vec<f32>> = (0..data.num_rows()).map(|r| data.row(r)).collect();
    let scorer = PackedScorer::pack(model, EngineKind::Flat, &rows, None, &[])
        .expect("the flat engine needs no bin grid");
    let mut out = vec![0.0f64; rows.len()];
    scorer.score_all(&mut out);
    out
}

/// The cutoff that (approximately) equalizes false-positive and
/// false-negative rates over `(probs, labels)` — §3's observation that
/// raising the cutoff to about 0.65 "equalizes false negative and false
/// positive rate" and makes LFO less conservative.
pub fn equalize_cutoff(probs: &[f64], labels: &[f32]) -> f64 {
    let mut best = 0.5;
    let mut best_gap = f64::INFINITY;
    for step in 1..100 {
        let cutoff = step as f64 / 100.0;
        let c = Confusion::at_cutoff(probs, labels, cutoff);
        let gap = (c.false_positive_fraction() - c.false_negative_fraction()).abs();
        if gap < best_gap {
            best_gap = gap;
            best = cutoff;
        }
    }
    best
}

/// Evaluates a trained model against another window's labeled data,
/// returning the confusion at `cutoff` (the Figure 5 "prediction error" is
/// `error_fraction()` of this).
pub fn evaluate(model: &Model, data: &Dataset, cutoff: f64) -> Confusion {
    let probs = batch_probs(model, data);
    Confusion::at_cutoff(&probs, data.labels(), cutoff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureTracker;
    use crate::labels::build_training_set;
    use cdn_trace::{GeneratorConfig, TraceGenerator};
    use opt::{compute_opt, OptConfig};

    fn window_dataset(seed: u64, n: u64, cache: u64) -> Dataset {
        let trace = TraceGenerator::new(GeneratorConfig::small(seed, n)).generate();
        let opt = compute_opt(trace.requests(), &OptConfig::bhr(cache)).unwrap();
        let cfg = LfoConfig::default();
        let mut tracker = FeatureTracker::new(cfg.num_gaps, cfg.cost_model);
        build_training_set(trace.requests(), &opt, &mut tracker, cache)
    }

    #[test]
    fn training_reaches_high_accuracy_on_its_own_window() {
        let data = window_dataset(1, 5_000, 4 * 1024 * 1024);
        let trained = train_window(&data, &LfoConfig::default());
        // The paper reports >93% test accuracy; training accuracy on the
        // same window must be at least that.
        assert!(
            trained.train_accuracy > 0.9,
            "train accuracy {}",
            trained.train_accuracy
        );
    }

    #[test]
    fn generalizes_to_the_next_window() {
        // Train on window 1, evaluate on window 2 of the same trace.
        let cache = 4 * 1024 * 1024;
        let trace = TraceGenerator::new(GeneratorConfig::small(2, 10_000)).generate();
        let reqs = trace.requests();
        let cfg = LfoConfig::default();
        let mut tracker = FeatureTracker::new(cfg.num_gaps, cfg.cost_model);
        let opt_a = compute_opt(&reqs[..5_000], &OptConfig::bhr(cache)).unwrap();
        let data_a = build_training_set(&reqs[..5_000], &opt_a, &mut tracker, cache);
        let opt_b = compute_opt(&reqs[5_000..], &OptConfig::bhr(cache)).unwrap();
        let data_b = build_training_set(&reqs[5_000..], &opt_b, &mut tracker, cache);

        let trained = train_window(&data_a, &cfg);
        let test = evaluate(&trained.model, &data_b, cfg.cutoff);
        let error = test.error_fraction();
        assert!(error < 0.25, "test error {error}");
    }

    #[test]
    fn equalize_cutoff_balances_error_rates() {
        // Probabilities skewed high: many negatives score above 0.5, so the
        // balancing cutoff must rise above 0.5.
        let probs: Vec<f64> = (0..100).map(|i| 0.3 + 0.6 * (i as f64 / 100.0)).collect();
        let labels: Vec<f32> = (0..100).map(|i| (i >= 70) as u8 as f32).collect();
        let c = equalize_cutoff(&probs, &labels);
        assert!(c > 0.5, "cutoff {c}");
        let conf = Confusion::at_cutoff(&probs, &labels, c);
        assert!(
            (conf.false_positive_fraction() - conf.false_negative_fraction()).abs() < 0.05,
            "rates not equalized at {c}"
        );
    }

    #[test]
    fn continued_window_appends_and_respects_cap() {
        let data = window_dataset(4, 3_000, 2 * 1024 * 1024);
        let cfg = LfoConfig::default(); // 30 trees per full rebuild
        let base = train_window(&data, &cfg);
        assert_eq!(base.model.trees().len(), 30);

        let uncapped = RetrainConfig {
            delta_trees: 5,
            full_refresh: 4,
            max_trees: 0,
        };
        let grown = train_window_continued(&base.model, &data, &cfg, &uncapped, None);
        assert_eq!(grown.model.trees().len(), 35);
        assert_eq!(&grown.model.trees()[..30], base.model.trees());

        let capped = RetrainConfig {
            max_trees: 32,
            ..uncapped
        };
        let capped_model = train_window_continued(&base.model, &data, &cfg, &capped, None);
        // 27 newest incumbent trees retained + 5 appended = the cap.
        assert_eq!(capped_model.model.trees().len(), 32);
        assert_eq!(&capped_model.model.trees()[..27], &base.model.trees()[3..]);
    }

    #[test]
    fn frozen_bin_map_from_same_window_changes_nothing() {
        let data = window_dataset(5, 2_000, 2 * 1024 * 1024);
        let cfg = LfoConfig::default();
        let base = train_window(&data, &cfg);
        let retrain = RetrainConfig {
            delta_trees: 4,
            full_refresh: 4,
            max_trees: 0,
        };
        let map = gbdt::BinMap::fit(&data, cfg.gbdt.max_bins);
        let with_map = train_window_continued(&base.model, &data, &cfg, &retrain, Some(&map));
        let without = train_window_continued(&base.model, &data, &cfg, &retrain, None);
        assert_eq!(with_map.model, without.model);
    }

    #[test]
    fn confusion_counts_cover_all_rows() {
        let data = window_dataset(3, 2_000, 1024 * 1024);
        let trained = train_window(&data, &LfoConfig::default());
        assert_eq!(trained.train_confusion.total(), data.num_rows());
        assert!((0.0..=1.0).contains(&trained.positive_fraction));
    }
}
