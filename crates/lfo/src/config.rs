//! LFO configuration.

use cdn_trace::CostModel;
use gbdt::GbdtParams;
use serde::{Deserialize, Serialize};

use crate::features::TrackerBudget;

/// How the predicted likelihood is turned into a caching policy.
///
/// §5 of the paper singles out *policy design* — "how to translate a
/// ranking of objects into a caching policy" — as the open problem behind
/// LFO's gap to OPT ("incorrect admission choices have a knock-on effect:
/// objects that should receive hits end up being evicted before they do
/// receive a hit"). These variants are concrete answers:
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PolicyDesign {
    /// The paper's §2.4 policy: admit when likelihood ≥ cutoff, evict the
    /// minimum-likelihood resident.
    #[default]
    Paper,
    /// Admission must *pay for itself*: on top of the cutoff, a miss is
    /// only admitted when the cache has room or the incoming likelihood
    /// exceeds the weakest resident's — so a marginal newcomer can never
    /// evict a stronger object (directly targeting the knock-on effect).
    ProtectedAdmission,
    /// Rank residents by expected saved miss cost per byte
    /// (`likelihood × C_i / S_i`) instead of raw likelihood; admission is
    /// unchanged. Under the byte-hit-ratio cost model this equals raw
    /// likelihood; under object-hit-ratio or latency costs it prefers
    /// many small likely objects over one large one.
    DensityRanked,
}

/// How the admission cutoff is chosen each window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CutoffMode {
    /// A fixed cutoff (the paper's default 0.5).
    Fixed(f64),
    /// Re-tune per window to the cutoff that equalizes false-positive and
    /// false-negative rates on the training set (§3: "We could make LFO
    /// more aggressive by raising the cutoff to about .65, equalizing
    /// false negative and false positive rate").
    EqualizeErrorRates,
}

impl Default for CutoffMode {
    fn default() -> Self {
        CutoffMode::Fixed(0.5)
    }
}

/// How the cache picks its eviction victim (DESIGN.md §14).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvictionStrategy {
    /// The reference path: a fully ordered `BTreeSet` priority queue.
    /// Exact minimum eviction, O(log n) reorder on every hit.
    #[default]
    ExactQueue,
    /// Sample-K eviction: score `k` seeded-random residents and evict the
    /// minimum. Hits become O(1) map updates (no queue reorder, no
    /// frontier publishing); `k >= residents` degenerates to an exact
    /// full scan with zero RNG draws.
    SampleK {
        /// Residents sampled per eviction.
        k: usize,
        /// Seed of the per-cache sampling stream.
        seed: u64,
    },
}

impl EvictionStrategy {
    /// A sample-K strategy at `k` with the default seed.
    pub fn sample(k: usize) -> Self {
        EvictionStrategy::SampleK {
            k,
            seed: 0x5a3b_1e8d_9c4f_0b27,
        }
    }
}

/// Configuration of the LFO learner and policy.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LfoConfig {
    /// Admission cutoff on the predicted likelihood (paper: 0.5; Figure 5a
    /// sweeps it and §3 notes ~0.65 equalizes FP and FN rates).
    pub cutoff: f64,
    /// Number of inter-request gaps tracked per object (paper: 50).
    pub num_gaps: usize,
    /// Optional thinned gap schedule (1-based indices, ascending). When
    /// set, overrides the dense `1..=num_gaps` layout — the Figure 8
    /// discussion's "only using time gaps 1, 2, 4, 8, 16, etc.".
    pub gap_schedule: Option<Vec<usize>>,
    /// GBDT hyperparameters (paper: LightGBM defaults, 30 iterations).
    pub gbdt: GbdtParams,
    /// Cost model used for OPT labels and the cost feature.
    pub cost_model: CostModel,
    /// Likelihood → policy translation (§5 "policy design").
    pub design: PolicyDesign,
    /// How the cutoff is chosen each window.
    pub cutoff_mode: CutoffMode,
    /// Optional memory budget for the gap tracker. `None` (and the
    /// all-default budget) keep the exact unbounded tracker; a finite
    /// budget caps exact histories with doorkeeper-sketch admission and
    /// CLOCK eviction (DESIGN.md §14). Optional so artifacts produced
    /// before this field existed still deserialize.
    pub tracker_budget: Option<TrackerBudget>,
    /// Optional eviction strategy. `None` means [`EvictionStrategy::ExactQueue`],
    /// the reference path. Optional for artifact backward compatibility.
    pub eviction: Option<EvictionStrategy>,
}

impl Default for LfoConfig {
    fn default() -> Self {
        LfoConfig {
            cutoff: 0.5,
            num_gaps: 50,
            gap_schedule: None,
            gbdt: GbdtParams::lfo_paper(),
            cost_model: CostModel::ByteHitRatio,
            design: PolicyDesign::Paper,
            cutoff_mode: CutoffMode::Fixed(0.5),
            tracker_budget: None,
            eviction: None,
        }
    }
}

/// Incremental (warm-start) retraining policy for the sliding-window
/// pipeline: instead of growing all `num_iterations` trees from scratch
/// every window, continue boosting from the incumbent with `delta_trees`
/// new trees, rebuilding in full every `full_refresh` windows (and
/// whenever the rollout gates reject an incremental candidate).
///
/// The default is *disabled* (`full_refresh: 1` — every window is a full
/// rebuild), which reproduces the scratch path bit for bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetrainConfig {
    /// Trees appended per incremental window.
    pub delta_trees: usize,
    /// A full from-scratch rebuild every this many windows; 1 disables
    /// incremental retraining entirely.
    pub full_refresh: usize,
    /// Ensemble-size cap: before appending, the incumbent is truncated
    /// (oldest trees first) so the result stays within this many trees.
    /// 0 means uncapped.
    pub max_trees: usize,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            delta_trees: 30,
            full_refresh: 1,
            max_trees: 0,
        }
    }
}

impl RetrainConfig {
    /// Whether this configuration ever trains incrementally.
    pub fn incremental(&self) -> bool {
        self.full_refresh > 1 && self.delta_trees >= 1
    }
}

impl LfoConfig {
    /// The paper's suggested exponential thinning: gaps 1, 2, 4, ..., up to
    /// `num_gaps` (Figure 8 discussion).
    pub fn thinned() -> Self {
        let mut schedule = Vec::new();
        let mut g = 1usize;
        while g <= 50 {
            schedule.push(g);
            g *= 2;
        }
        schedule.push(50);
        LfoConfig {
            gap_schedule: Some(schedule),
            ..Default::default()
        }
    }

    /// The effective gap indices (dense or thinned).
    pub fn gaps(&self) -> Vec<usize> {
        match &self.gap_schedule {
            Some(s) => s.clone(),
            None => (1..=self.num_gaps).collect(),
        }
    }

    /// The effective tracker budget (`None` = unbounded exact tracker).
    pub fn budget(&self) -> TrackerBudget {
        self.tracker_budget.unwrap_or_default()
    }

    /// The effective eviction strategy (`None` = exact queue).
    pub fn eviction_strategy(&self) -> EvictionStrategy {
        self.eviction.unwrap_or_default()
    }

    /// Builds a feature tracker matching this configuration.
    pub fn tracker(&self) -> crate::features::FeatureTracker {
        crate::features::FeatureTracker::with_budget(self.gaps(), self.cost_model, self.budget())
    }

    /// Number of features the model sees: size, cost, free bytes, gaps.
    pub fn num_features(&self) -> usize {
        3 + self.gaps().len()
    }

    /// Human-readable feature names, aligned with feature indices
    /// (Figure 8's y-axis).
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = vec!["Size".to_string(), "Cost".to_string(), "Free".to_string()];
        names.extend(self.gaps().iter().map(|i| format!("Gap {i}")));
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LfoConfig::default();
        assert_eq!(c.cutoff, 0.5);
        assert_eq!(c.num_gaps, 50);
        assert_eq!(c.gbdt.num_iterations, 30);
        assert_eq!(c.num_features(), 53);
    }

    #[test]
    fn thinned_schedule_shrinks_features() {
        let c = LfoConfig::thinned();
        assert_eq!(c.gaps(), vec![1, 2, 4, 8, 16, 32, 50]);
        assert_eq!(c.num_features(), 10);
        assert_eq!(c.feature_names().last().unwrap(), "Gap 50");
        assert_eq!(c.tracker().num_gaps(), 7);
    }

    #[test]
    fn config_payloads_without_budget_keys_still_deserialize() {
        // Artifacts written before the §14 fields existed carry neither
        // `tracker_budget` nor `eviction`; both must read back as None.
        let full = Serialize::to_value(&LfoConfig::default());
        let serde::Value::Map(entries) = full else {
            panic!("config serializes as a map");
        };
        let stripped: Vec<_> = entries
            .into_iter()
            .filter(|(k, _)| k != "tracker_budget" && k != "eviction")
            .collect();
        let old: LfoConfig = Deserialize::from_value(&serde::Value::Map(stripped)).unwrap();
        assert_eq!(old.tracker_budget, None);
        assert_eq!(old.eviction, None);
        assert_eq!(old.eviction_strategy(), EvictionStrategy::ExactQueue);
        assert!(!old.budget().is_bounded());
    }

    #[test]
    fn feature_names_align() {
        let c = LfoConfig::default();
        let names = c.feature_names();
        assert_eq!(names.len(), c.num_features());
        assert_eq!(names[0], "Size");
        assert_eq!(names[2], "Free");
        assert_eq!(names[3], "Gap 1");
        assert_eq!(names[52], "Gap 50");
    }
}
