//! Runtime guardrail: hybrid learned/LRU serving with a worst-case bound.
//!
//! Every safety mechanism in this repo so far is *deploy-time*: the
//! accuracy/PSI gates and the warm-start ladder can refuse to publish a bad
//! model, but a model that passed its gates and then degrades on live
//! traffic keeps serving until the next window retrains. The guardrail
//! closes that gap at *runtime*, the way learning-augmented caching theory
//! prescribes: run a cheap robust baseline (LRU) in the shadow of the
//! learned policy and force the cache onto it whenever the learned policy
//! provably underperforms, so the realized byte hit ratio is never much
//! worse than LRU's no matter what the model does.
//!
//! # Mechanism
//!
//! A [`Guardrail`] attached to an [`LfoCache`](crate::LfoCache) observes
//! every request the cache serves and maintains, with no second copy of any
//! payload, two *ghost* indexes over a hash-sampled substream:
//!
//! - a **ghost LRU**: recency-ordered byte accounting answering "would a
//!   plain LRU of this capacity have hit this request?" — the shadow
//!   baseline `BHR_LRU`;
//! - a **ghost learned cache**: the same index driven by the live model's
//!   admission decision and eviction priority, answering "would the learned
//!   policy have hit?" — used to re-prove the model while the real cache is
//!   serving LRU.
//!
//! Sampling is SHARDS-style spatial sampling: an object is in the
//! substream iff the low `sample_shift` bits of its hashed id are zero, and
//! the ghost capacities are scaled by the same `2^-sample_shift` rate, so
//! the sampled hit ratios are unbiased estimates of the full-stream ones at
//! a fraction of the bookkeeping cost.
//!
//! # State machine
//!
//! The guardrail evaluates once every `window` requests and moves between
//! two modes with hysteresis (see DESIGN.md §13 for the bound derivation):
//!
//! ```text
//!           realized BHR < (1−ε)·BHR_LRU − δ
//!           for trip_after consecutive windows
//!   Learned ───────────────────────────────────▶ LruForced
//!      ▲                                             │
//!      │   ghost-learned BHR ≥ (1−ε)·BHR_LRU − δ     │
//!      └──────── for recover_after windows ──────────┘
//! ```
//!
//! In `LruForced` mode the cache admits everything and evicts by recency
//! (exactly its no-model fallback); the learned policy keeps being scored
//! against the ghost learned cache and must *re-prove itself on shadow
//! decisions* before it is allowed back — a bad model can trip the
//! guardrail but never argue its way out with the same bad decisions.
//! Because violations must persist for `trip_after` windows and recovery
//! for `recover_after`, a policy hovering at the bound cannot flap.

use std::collections::{BTreeSet, HashMap, VecDeque};

use cdn_trace::{ObjectId, Request};
use serde::{Deserialize, Serialize};

/// Serving mode the guardrail currently holds a cache in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardrailMode {
    /// The learned policy decides admission and eviction.
    #[default]
    Learned,
    /// Admission/eviction forced to LRU; the learned policy is on probation
    /// and must re-prove itself on shadow-scored decisions.
    LruForced,
}

impl GuardrailMode {
    /// Short lowercase label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            GuardrailMode::Learned => "learned",
            GuardrailMode::LruForced => "lru-forced",
        }
    }
}

/// Tuning knobs for the runtime guardrail. `Default` gives the bound from
/// the acceptance criteria: ε = 0.05, δ = 0.01, 4096-request evaluation
/// windows, two-window hysteresis on both edges, 1/8 shadow sampling.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GuardrailConfig {
    /// Relative slack on the LRU baseline: the learned policy must keep
    /// `BHR ≥ (1−ε)·BHR_LRU − δ`.
    pub epsilon: f64,
    /// Absolute slack on the same bound, absorbing sampling noise and the
    /// hit-ratio cost of the trip lag itself.
    pub delta: f64,
    /// Requests per evaluation window (the sliding window the BHRs are
    /// compared over).
    pub window: u64,
    /// Consecutive violating windows before the guardrail trips to
    /// [`GuardrailMode::LruForced`].
    pub trip_after: u32,
    /// Consecutive passing shadow windows before a tripped guardrail
    /// returns to [`GuardrailMode::Learned`].
    pub recover_after: u32,
    /// Shadow-sampling rate exponent: an object is tracked iff the low
    /// `sample_shift` bits of its hashed id are zero (rate `2^-shift`),
    /// and ghost capacities are scaled to match. 0 = track everything.
    pub sample_shift: u32,
    /// When false the state machine runs (modes, trips, shadow BHRs) but
    /// never forces the cache onto LRU — observe-only deployment.
    pub enforce: bool,
    /// Start in [`GuardrailMode::LruForced`] without counting a trip: the
    /// policy serves LRU until it proves the bound on shadow decisions.
    /// The pipeline sets this for models restored from disk ("shadow
    /// probation") — a stale artifact must re-earn live traffic.
    pub start_in_fallback: bool,
    /// When true, a guardrail trip asks the trainer to retrain the next
    /// candidate from scratch ([`crate::TrainKind::ScratchFallback`])
    /// instead of appending delta trees to the incumbent that just
    /// tripped.
    pub trip_forces_scratch: bool,
    /// Sample-K the learned ghost's evictions with this K instead of the
    /// exact B-tree queue, so probation is judged under the same eviction
    /// discipline the live cache uses. `None` keeps the exact ghost —
    /// unless the cache this guardrail attaches to runs
    /// [`EvictionStrategy`](crate::EvictionStrategy)`::SampleK`, in which
    /// case [`crate::LfoCache::enable_guardrail_scoped`] inherits that K.
    /// Optional so configs serialized before this field still deserialize.
    pub ghost_sample_k: Option<u32>,
}

impl Default for GuardrailConfig {
    fn default() -> Self {
        GuardrailConfig {
            epsilon: 0.05,
            delta: 0.01,
            window: 4096,
            trip_after: 2,
            recover_after: 2,
            sample_shift: 3,
            enforce: true,
            start_in_fallback: false,
            trip_forces_scratch: false,
            ghost_sample_k: None,
        }
    }
}

impl GuardrailConfig {
    /// The runtime bound this configuration enforces, given a shadow-LRU
    /// byte hit ratio.
    pub fn bound(&self, lru_bhr: f64) -> f64 {
        (1.0 - self.epsilon) * lru_bhr - self.delta
    }
}

/// Point-in-time view of a guardrail's state and lifetime counters, cheap
/// to copy out of a serving thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GuardrailSnapshot {
    /// Current serving mode.
    pub mode: GuardrailMode,
    /// Times the guardrail has tripped Learned → LruForced.
    pub trips: u64,
    /// Requests served while the guardrail was forcing LRU.
    pub forced_requests: u64,
    /// Evaluation windows completed.
    pub windows_evaluated: u64,
    /// Bytes requested on the sampled substream.
    pub shadow_total_bytes: u64,
    /// Sampled bytes the ghost LRU would have hit.
    pub shadow_lru_hit_bytes: u64,
    /// Sampled bytes the real cache actually hit.
    pub shadow_realized_hit_bytes: u64,
    /// Sampled requests whose ghost inserts were skipped because the
    /// object had not yet cleared the shared doorkeeper (see
    /// [`Guardrail::set_borrow_doorkeeper`]); 0 when not borrowing.
    pub doorkeeper_skips: u64,
    /// Estimated ghost bookkeeping bytes those skips avoided (entry-size
    /// estimates per skipped insert, not live occupancy).
    pub doorkeeper_saved_bytes: u64,
}

impl GuardrailSnapshot {
    /// Lifetime shadow-LRU byte hit ratio (sampled basis); 0 when empty.
    pub fn shadow_lru_bhr(&self) -> f64 {
        ratio(self.shadow_lru_hit_bytes, self.shadow_total_bytes)
    }

    /// Lifetime realized byte hit ratio on the same sampled basis.
    pub fn shadow_realized_bhr(&self) -> f64 {
        ratio(self.shadow_realized_hit_bytes, self.shadow_total_bytes)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// SplitMix64 finalizer — the same mix [`shard_of`](crate::shard_of) routes
/// with, reused here so the sampled substream is a uniform slice of every
/// shard's traffic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// SplitMix64-backed hasher for the `ObjectId`-keyed ghost maps. These maps
/// sit on the sampled serving path, where the default SipHash is most of a
/// lookup's cost; one 64-bit mix is plenty for keys that are already ids.
#[derive(Default)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = splitmix64(self.0 ^ u64::from(b));
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = splitmix64(self.0 ^ x);
    }
}

type IdMap<V> = HashMap<ObjectId, V, std::hash::BuildHasherDefault<IdHasher>>;

#[derive(Clone, Copy)]
struct GhostEntry {
    priority: u64,
    tiebreak: u64,
    size: u64,
    /// Position in the sampled slot board (always 0 under the exact queue).
    slot: usize,
}

/// Index-only LRU simulation with lazy (tombstone) recency updates: every
/// access pushes a fresh `(tick, id)` pair and leaves any stale pair in the
/// queue; eviction pops pairs until one matches its object's live tick.
/// Amortized O(1) per access where the [`GhostCache`] pays two B-tree ops —
/// this runs on every sampled request in `Learned` mode, so constant
/// factors are the guardrail's entire overhead story.
struct LruGhost {
    capacity: u64,
    used: u64,
    tick: u64,
    /// id → (size, last-access tick). A queue pair is live iff its tick
    /// equals the entry's.
    entries: IdMap<(u64, u64)>,
    queue: VecDeque<(u64, ObjectId)>,
}

impl LruGhost {
    fn new(capacity: u64) -> Self {
        LruGhost {
            capacity: capacity.max(1),
            used: 0,
            tick: 0,
            entries: IdMap::default(),
            queue: VecDeque::new(),
        }
    }

    /// Feeds one request; returns whether an LRU of this capacity would
    /// have hit. Everything is admitted (plain LRU has no admission).
    fn access(&mut self, object: ObjectId, size: u64) -> bool {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&object) {
            entry.1 = self.tick;
            self.queue.push_back((self.tick, object));
            self.compact_if_bloated();
            return true;
        }
        if size > self.capacity {
            return false;
        }
        while self.used + size > self.capacity {
            let (t, victim) = self
                .queue
                .pop_front()
                .expect("over budget implies a nonempty queue");
            if let Some(&(vsize, last)) = self.entries.get(&victim) {
                if last == t {
                    self.entries.remove(&victim);
                    self.used -= vsize;
                }
            }
        }
        self.entries.insert(object, (size, self.tick));
        self.queue.push_back((self.tick, object));
        self.used += size;
        false
    }

    /// Hit-heavy streams push tombstones faster than eviction drains them;
    /// drop the stale pairs once they outnumber the live ones.
    fn compact_if_bloated(&mut self) {
        if self.queue.len() > self.entries.len() * 2 + 64 {
            let entries = &self.entries;
            self.queue
                .retain(|&(t, id)| entries.get(&id).is_some_and(|&(_, last)| last == t));
        }
    }
}

/// Estimated bytes one [`LruGhost`] insert costs: a map entry (id + size +
/// tick plus hash-table overhead) and one recency-queue pair.
const LRU_GHOST_ENTRY_BYTES: u64 = 56;

/// Estimated bytes one [`GhostCache`] insert costs: a map entry holding a
/// [`GhostEntry`] plus one eviction-index key.
const LEARNED_GHOST_ENTRY_BYTES: u64 = 72;

/// Seed of a sampled ghost's victim-draw stream (reset to this on every
/// probation restart so re-proving runs are reproducible).
const GHOST_SAMPLE_SEED: u64 = 0x9d1c_03a7_5e2b_44f1;

/// How a [`GhostCache`] finds its weakest resident — the same two shapes as
/// `EvictIndex` in [`crate::policy`], so probation can be judged under the
/// eviction discipline the live cache actually runs.
enum GhostIndex {
    /// Fully ordered priority queue: exact minimum, O(log n) per access.
    Exact(BTreeSet<(u64, u64, ObjectId)>),
    /// Sample-K: `k` seeded draws from the slot board, evict the sampled
    /// minimum; `k >= residents` degenerates to an exact full scan.
    Sampled {
        slots: Vec<ObjectId>,
        k: usize,
        rng: u64,
    },
}

/// Index-only cache simulation: byte accounting plus an eviction index, no
/// payloads. Priorities are opaque `u64`s that order ascending-is-weakest
/// (nonnegative-f64 bit patterns for the learned ghost; the LRU shadow
/// uses the cheaper [`LruGhost`] instead).
struct GhostCache {
    capacity: u64,
    used: u64,
    tick: u64,
    entries: IdMap<GhostEntry>,
    index: GhostIndex,
}

impl GhostCache {
    fn new(capacity: u64) -> Self {
        GhostCache {
            capacity: capacity.max(1),
            used: 0,
            tick: 0,
            entries: IdMap::default(),
            index: GhostIndex::Exact(BTreeSet::new()),
        }
    }

    fn sampled(capacity: u64, k: u32) -> Self {
        GhostCache {
            index: GhostIndex::Sampled {
                slots: Vec::new(),
                k: (k as usize).max(1),
                rng: GHOST_SAMPLE_SEED,
            },
            ..GhostCache::new(capacity)
        }
    }

    /// Empties the ghost in place, keeping its capacity and eviction
    /// discipline; a sampled index also rewinds its draw stream to the
    /// seed so every probation is reproducible.
    fn reset(&mut self) {
        self.used = 0;
        self.tick = 0;
        self.entries = IdMap::default();
        match &mut self.index {
            GhostIndex::Exact(queue) => queue.clear(),
            GhostIndex::Sampled { slots, rng, .. } => {
                slots.clear();
                *rng = GHOST_SAMPLE_SEED;
            }
        }
    }

    /// The weakest resident's full ordering key, per this ghost's index
    /// discipline (`None` when empty). Sampled mode draws `k` residents —
    /// or scans all of them RNG-free when `k` covers the board.
    fn weakest(&mut self) -> Option<(u64, u64, ObjectId)> {
        let entries = &self.entries;
        let key = |object: ObjectId| {
            let e = entries[&object];
            (e.priority, e.tiebreak, object)
        };
        match &mut self.index {
            GhostIndex::Exact(queue) => queue.iter().next().copied(),
            GhostIndex::Sampled { slots, k, rng } => {
                if slots.is_empty() {
                    return None;
                }
                if *k >= slots.len() {
                    return slots.iter().map(|&o| key(o)).min();
                }
                let mut best: Option<(u64, u64, ObjectId)> = None;
                for _ in 0..*k {
                    *rng = rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
                    let candidate = key(slots[(splitmix64(*rng) as usize) % slots.len()]);
                    if best.is_none_or(|b| candidate < b) {
                        best = Some(candidate);
                    }
                }
                best
            }
        }
    }

    /// Removes the resident at `key` (as returned by [`Self::weakest`]).
    fn remove(&mut self, key: (u64, u64, ObjectId)) {
        let (p, t, victim) = key;
        let entry = self.entries.remove(&victim).expect("index/entries in sync");
        match &mut self.index {
            GhostIndex::Exact(queue) => {
                queue.remove(&(p, t, victim));
            }
            GhostIndex::Sampled { slots, .. } => {
                slots.swap_remove(entry.slot);
                if let Some(&moved) = slots.get(entry.slot) {
                    self.entries
                        .get_mut(&moved)
                        .expect("index/entries in sync")
                        .slot = entry.slot;
                }
            }
        }
        self.used -= entry.size;
    }

    /// Feeds one request; returns whether the ghost would have hit. On a
    /// hit the object is re-ranked at `priority`; on a miss it is admitted
    /// iff `admit`, evicting weakest-first to fit.
    fn access(&mut self, object: ObjectId, size: u64, priority: u64, admit: bool) -> bool {
        self.tick += 1;
        if let Some(entry) = self.entries.get(&object).copied() {
            let updated = GhostEntry {
                priority,
                tiebreak: self.tick,
                size: entry.size,
                slot: entry.slot,
            };
            if let GhostIndex::Exact(queue) = &mut self.index {
                queue.remove(&(entry.priority, entry.tiebreak, object));
                queue.insert((priority, self.tick, object));
            }
            self.entries.insert(object, updated);
            return true;
        }
        if !admit || size > self.capacity {
            return false;
        }
        while self.used + size > self.capacity {
            let weakest = self.weakest().expect("over budget implies nonempty");
            self.remove(weakest);
        }
        let slot = match &mut self.index {
            GhostIndex::Exact(queue) => {
                queue.insert((priority, self.tick, object));
                0
            }
            GhostIndex::Sampled { slots, .. } => {
                slots.push(object);
                slots.len() - 1
            }
        };
        self.entries.insert(
            object,
            GhostEntry {
                priority,
                tiebreak: self.tick,
                size,
                slot,
            },
        );
        self.used += size;
        false
    }
}

/// The runtime guardrail state machine (see module docs). One per cache —
/// in a sharded deployment each shard carries its own, scoped to its slice
/// of the capacity and stream.
pub struct Guardrail {
    config: GuardrailConfig,
    mode: GuardrailMode,
    lru: LruGhost,
    learned: GhostCache,
    /// When true the ghosts borrow the cache's shared doorkeeper instead
    /// of minting their own admission state: a miss on an object that has
    /// not cleared the doorkeeper is *not* inserted into either ghost (the
    /// one-hit-wonder tail the doorkeeper exists to filter), and the
    /// avoided bookkeeping is counted in `doorkeeper_saved_bytes`.
    borrow_doorkeeper: bool,
    doorkeeper_skips: u64,
    doorkeeper_saved_bytes: u64,
    trips: u64,
    forced_requests: u64,
    windows_evaluated: u64,
    violation_streak: u32,
    recovery_streak: u32,
    // Current-window accumulators, all on the sampled substream.
    win_requests: u64,
    win_bytes: u64,
    win_lru_hit_bytes: u64,
    win_learned_hit_bytes: u64,
    win_realized_hit_bytes: u64,
    // Lifetime totals (sampled substream).
    total_bytes: u64,
    total_lru_hit_bytes: u64,
    total_realized_hit_bytes: u64,
}

impl Guardrail {
    /// Creates a guardrail whose ghost caches model `capacity` bytes (the
    /// byte budget backing the stream this guardrail observes — a pooled
    /// shard passes `pool capacity / N`, not the pool capacity).
    pub fn new(config: GuardrailConfig, capacity: u64) -> Self {
        let ghost_capacity = (capacity >> config.sample_shift).max(1);
        Guardrail {
            mode: if config.start_in_fallback {
                GuardrailMode::LruForced
            } else {
                GuardrailMode::Learned
            },
            lru: LruGhost::new(ghost_capacity),
            learned: match config.ghost_sample_k {
                Some(k) => GhostCache::sampled(ghost_capacity, k),
                None => GhostCache::new(ghost_capacity),
            },
            borrow_doorkeeper: false,
            doorkeeper_skips: 0,
            doorkeeper_saved_bytes: 0,
            trips: 0,
            forced_requests: 0,
            windows_evaluated: 0,
            violation_streak: 0,
            recovery_streak: 0,
            win_requests: 0,
            win_bytes: 0,
            win_lru_hit_bytes: 0,
            win_learned_hit_bytes: 0,
            win_realized_hit_bytes: 0,
            total_bytes: 0,
            total_lru_hit_bytes: 0,
            total_realized_hit_bytes: 0,
            config,
        }
    }

    /// The configuration this guardrail was built with.
    pub fn config(&self) -> &GuardrailConfig {
        &self.config
    }

    /// Current mode.
    pub fn mode(&self) -> GuardrailMode {
        self.mode
    }

    /// Whether the cache must serve LRU for the next request. False in
    /// observe-only deployments even while tripped.
    pub fn forced(&self) -> bool {
        self.config.enforce && self.mode == GuardrailMode::LruForced
    }

    /// Whether `object` is on the sampled shadow substream.
    fn sampled(&self, object: ObjectId) -> bool {
        self.config.sample_shift == 0
            || splitmix64(object.0) & ((1u64 << self.config.sample_shift) - 1) == 0
    }

    /// Makes the ghosts borrow the cache's doorkeeper instead of minting
    /// their own admission state: once set, a sampled *miss* on an object
    /// the caller reports as not yet past the doorkeeper (see
    /// [`Self::record_shadowed`]) skips both ghost inserts — mirroring the
    /// real tracker, which holds no history for such objects either — and
    /// the avoided bookkeeping is accumulated in the snapshot's
    /// `doorkeeper_saved_bytes`. One-hit wonders never hit again, so the
    /// skipped inserts contribute no hit bytes to either shadow BHR; at
    /// worst the un-polluted ghost LRU retains real content slightly
    /// longer, which tightens (never weakens) the bound.
    pub fn set_borrow_doorkeeper(&mut self, borrow: bool) {
        self.borrow_doorkeeper = borrow;
    }

    /// Whether ghost inserts are filtered on doorkeeper evidence. Callers
    /// use this to skip producing the evidence (a per-request history
    /// probe) when it would be ignored anyway.
    pub fn borrows_doorkeeper(&self) -> bool {
        self.borrow_doorkeeper
    }

    /// Observes one served request: `priority` and `admit` are the learned
    /// policy's *would-be* eviction priority (nonnegative) and admission
    /// decision for this request, `hit` is the real cache's outcome.
    /// Returns the number of trips fired by this request (0 or 1) so the
    /// caller can account them per window.
    pub fn record(&mut self, request: &Request, priority: f64, admit: bool, hit: bool) -> u64 {
        self.record_shadowed(request, priority, admit, hit, true)
    }

    /// [`Self::record`] with doorkeeper evidence: `past_doorkeeper` says
    /// whether the cache's admission tracker holds exact history for this
    /// object (i.e. the doorkeeper has seen it before). Ignored unless
    /// [`Self::set_borrow_doorkeeper`] enabled borrowing.
    pub fn record_shadowed(
        &mut self,
        request: &Request,
        priority: f64,
        admit: bool,
        hit: bool,
        past_doorkeeper: bool,
    ) -> u64 {
        if self.forced() {
            self.forced_requests += 1;
        }
        if !self.sampled(request.object) {
            return 0;
        }
        let cleared = past_doorkeeper || !self.borrow_doorkeeper;
        self.win_requests += 1;
        self.win_bytes += request.size;
        if hit {
            self.win_realized_hit_bytes += request.size;
        }
        // Ghost LRU: recency-ordered, admits everything — except, when
        // borrowing the doorkeeper, objects the doorkeeper has not cleared
        // (they cannot be resident, so this branch is always a miss-path
        // insert being avoided).
        if cleared || self.lru.entries.contains_key(&request.object) {
            if self.lru.access(request.object, request.size) {
                self.win_lru_hit_bytes += request.size;
            }
        } else {
            self.doorkeeper_skips += 1;
            self.doorkeeper_saved_bytes += LRU_GHOST_ENTRY_BYTES;
        }
        // Ghost learned cache: the model's shadow decision. Priorities are
        // nonnegative, so f64 bit patterns order like the values. The ghost
        // is only fed while tripped — it is what recovery is judged on; in
        // Learned mode the realized stream IS the learned policy, so
        // skipping it halves steady-state shadow overhead. It re-warms
        // cold during probation, which can only delay recovery (extra
        // LRU-forced windows), never weaken the bound.
        debug_assert!(priority >= 0.0, "priorities must stay nonnegative");
        if self.mode == GuardrailMode::LruForced {
            if cleared || self.learned.entries.contains_key(&request.object) {
                if self
                    .learned
                    .access(request.object, request.size, priority.to_bits(), admit)
                {
                    self.win_learned_hit_bytes += request.size;
                }
            } else {
                self.doorkeeper_saved_bytes += LEARNED_GHOST_ENTRY_BYTES;
            }
        }
        if self.win_requests >= self.config.window {
            self.close_window()
        } else {
            0
        }
    }

    /// Evaluates the bound over the finished window and advances the state
    /// machine. Returns 1 when this evaluation tripped the guardrail.
    fn close_window(&mut self) -> u64 {
        self.windows_evaluated += 1;
        self.total_bytes += self.win_bytes;
        self.total_lru_hit_bytes += self.win_lru_hit_bytes;
        self.total_realized_hit_bytes += self.win_realized_hit_bytes;
        let mut tripped = 0;
        if self.win_bytes > 0 {
            let bound = self
                .config
                .bound(ratio(self.win_lru_hit_bytes, self.win_bytes));
            match self.mode {
                GuardrailMode::Learned => {
                    let realized = ratio(self.win_realized_hit_bytes, self.win_bytes);
                    if realized < bound {
                        self.violation_streak += 1;
                        if self.violation_streak >= self.config.trip_after {
                            self.mode = GuardrailMode::LruForced;
                            self.trips += 1;
                            tripped = 1;
                            self.violation_streak = 0;
                            self.recovery_streak = 0;
                            // Probation starts from a cold ghost: content
                            // left over from an earlier probation must not
                            // inflate the re-proving score.
                            self.learned.reset();
                        }
                    } else {
                        self.violation_streak = 0;
                    }
                }
                GuardrailMode::LruForced => {
                    // Re-prove on shadow decisions: the *ghost* learned
                    // cache must clear the bound, not the (LRU-serving)
                    // real one.
                    let shadow = ratio(self.win_learned_hit_bytes, self.win_bytes);
                    if shadow >= bound {
                        self.recovery_streak += 1;
                        if self.recovery_streak >= self.config.recover_after {
                            self.mode = GuardrailMode::Learned;
                            self.recovery_streak = 0;
                            self.violation_streak = 0;
                        }
                    } else {
                        self.recovery_streak = 0;
                    }
                }
            }
        }
        self.win_requests = 0;
        self.win_bytes = 0;
        self.win_lru_hit_bytes = 0;
        self.win_learned_hit_bytes = 0;
        self.win_realized_hit_bytes = 0;
        tripped
    }

    /// Copies out the current state and lifetime counters. Includes the
    /// still-open window's bytes so short runs are visible.
    pub fn snapshot(&self) -> GuardrailSnapshot {
        GuardrailSnapshot {
            mode: self.mode,
            trips: self.trips,
            forced_requests: self.forced_requests,
            windows_evaluated: self.windows_evaluated,
            shadow_total_bytes: self.total_bytes + self.win_bytes,
            shadow_lru_hit_bytes: self.total_lru_hit_bytes + self.win_lru_hit_bytes,
            shadow_realized_hit_bytes: self.total_realized_hit_bytes + self.win_realized_hit_bytes,
            doorkeeper_skips: self.doorkeeper_skips,
            doorkeeper_saved_bytes: self.doorkeeper_saved_bytes,
        }
    }
}

/// Exact (unsampled) LRU byte hit ratio of `requests` replayed through a
/// ghost LRU of `capacity` bytes — the reference baseline the adversarial
/// experiment checks the runtime bound against.
pub fn lru_reference_bhr(requests: &[Request], capacity: u64) -> f64 {
    let mut ghost = LruGhost::new(capacity);
    let mut total = 0u64;
    let mut hit = 0u64;
    for request in requests {
        total += request.size;
        if ghost.access(request.object, request.size) {
            hit += request.size;
        }
    }
    ratio(hit, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    fn full_sampling(window: u64) -> GuardrailConfig {
        GuardrailConfig {
            window,
            sample_shift: 0,
            ..GuardrailConfig::default()
        }
    }

    #[test]
    fn ghost_lru_evicts_least_recent() {
        let mut ghost = LruGhost::new(200);
        for id in [1u64, 2, 1, 3] {
            ghost.access(ObjectId(id), 100);
        }
        // Capacity 200: admitting 3 evicted the least-recent (2), not 1 —
        // the tombstone left by 1's first access must not count as 1.
        assert!(ghost.entries.contains_key(&ObjectId(1)));
        assert!(!ghost.entries.contains_key(&ObjectId(2)));
        assert!(ghost.entries.contains_key(&ObjectId(3)));
        assert_eq!(ghost.used, 200);
    }

    #[test]
    fn lru_ghost_matches_exact_priority_queue_lru() {
        // The lazy-tombstone ghost must be hit-for-hit identical to the
        // exact B-tree simulation driven as an LRU, including through
        // compactions (small capacity forces constant eviction; a hot
        // subset forces tombstone churn).
        let mut lazy = LruGhost::new(5_000);
        let mut exact = GhostCache::new(5_000);
        for t in 0..50_000u64 {
            let id = if t % 3 == 0 {
                t % 7
            } else {
                splitmix64(t) % 300
            };
            let size = 100 + (splitmix64(t ^ 17) % 400);
            let tick = exact.tick + 1;
            let a = lazy.access(ObjectId(id), size);
            let b = exact.access(ObjectId(id), size, tick, true);
            assert_eq!(a, b, "diverged at request {t} (id {id}, size {size})");
        }
        assert_eq!(lazy.used, exact.used);
    }

    #[test]
    fn sampled_ghost_with_full_sampling_matches_exact_ghost() {
        // k covering the whole board degenerates to an RNG-free full scan:
        // every hit/miss and the final byte accounting must match the
        // exact B-tree ghost on a priority-driven stream.
        let mut exact = GhostCache::new(5_000);
        let mut sampled = GhostCache::sampled(5_000, u32::MAX);
        for t in 0..20_000u64 {
            let id = splitmix64(t) % 200;
            let size = 100 + (splitmix64(t ^ 17) % 400);
            let priority = splitmix64(t ^ 99) % 1_000;
            let admit = !splitmix64(t ^ 5).is_multiple_of(4);
            let a = exact.access(ObjectId(id), size, priority, admit);
            let b = sampled.access(ObjectId(id), size, priority, admit);
            assert_eq!(a, b, "diverged at request {t}");
        }
        assert_eq!(exact.used, sampled.used);
        assert_eq!(exact.entries.len(), sampled.entries.len());
    }

    #[test]
    fn sampled_ghost_respects_capacity_and_resets_cold() {
        let mut ghost = GhostCache::sampled(1_000, 4);
        for t in 0..5_000u64 {
            ghost.access(ObjectId(splitmix64(t) % 100), 100 + t % 50, t, true);
            assert!(ghost.used <= ghost.capacity);
        }
        assert!(!ghost.entries.is_empty());
        ghost.reset();
        assert_eq!(ghost.used, 0);
        assert!(ghost.entries.is_empty());
        let GhostIndex::Sampled { slots, rng, .. } = &ghost.index else {
            panic!("reset must keep the sampled discipline");
        };
        assert!(slots.is_empty());
        assert_eq!(*rng, GHOST_SAMPLE_SEED);
    }

    #[test]
    fn oversize_and_declined_objects_bypass_the_ghost() {
        let mut ghost = GhostCache::new(100);
        assert!(
            !ghost.access(ObjectId(1), 500, 1, true),
            "oversize bypasses"
        );
        assert!(
            !ghost.access(ObjectId(2), 50, 2, false),
            "declined bypasses"
        );
        assert_eq!(ghost.used, 0);
    }

    #[test]
    fn matched_policies_never_trip() {
        // Realized outcomes fed straight from the ghost LRU itself: the
        // policies are identical, so the bound holds in every window and
        // the mode never leaves Learned.
        let mut guard = Guardrail::new(full_sampling(100), 10_000);
        let mut reference = GhostCache::new(10_000);
        for t in 0..5_000u64 {
            let id = t % 37;
            let tick = reference.tick + 1;
            let hit = reference.access(ObjectId(id), 256, tick, true);
            guard.record(&req(t, id, 256), 0.5, true, hit);
        }
        let snap = guard.snapshot();
        assert_eq!(snap.mode, GuardrailMode::Learned);
        assert_eq!(snap.trips, 0);
        assert!(snap.windows_evaluated >= 40);
        assert_eq!(snap.shadow_lru_hit_bytes, snap.shadow_realized_hit_bytes);
    }

    #[test]
    fn bad_policy_trips_and_recovery_requires_good_shadow_decisions() {
        // Realized outcomes are all misses (a policy that caches nothing)
        // on a trace LRU hits constantly: trips after `trip_after` windows.
        let cfg = GuardrailConfig {
            window: 50,
            trip_after: 2,
            recover_after: 2,
            sample_shift: 0,
            ..GuardrailConfig::default()
        };
        let mut guard = Guardrail::new(cfg, 10_000);
        let mut t = 0u64;
        // Phase 1: shadow decisions also bad (admit = false) — trips and
        // stays tripped.
        for _ in 0..300 {
            guard.record(&req(t, t % 10, 100), 0.0, false, false);
            t += 1;
        }
        assert_eq!(guard.mode(), GuardrailMode::LruForced);
        assert_eq!(guard.snapshot().trips, 1);
        assert!(guard.forced());
        // Phase 2: the shadow policy starts admitting (good decisions);
        // after recover_after clean windows the guardrail re-arms, even
        // though realized outcomes (still LRU-forced) were what they were.
        for _ in 0..300 {
            guard.record(&req(t, t % 10, 100), 0.9, true, true);
            t += 1;
        }
        assert_eq!(guard.mode(), GuardrailMode::Learned);
        assert_eq!(guard.snapshot().trips, 1, "recovery is not a trip");
    }

    #[test]
    fn hysteresis_requires_consecutive_violations() {
        let cfg = GuardrailConfig {
            window: 10,
            trip_after: 2,
            sample_shift: 0,
            ..GuardrailConfig::default()
        };
        let mut guard = Guardrail::new(cfg, 10_000);
        let mut t = 0u64;
        let mut run = |guard: &mut Guardrail, hit: bool, n: u64| {
            for _ in 0..n {
                guard.record(&req(t, t % 5, 100), 0.9, true, hit);
                t += 1;
            }
        };
        // Alternate one bad window with one good window: a single
        // violation never reaches trip_after = 2.
        for _ in 0..10 {
            run(&mut guard, false, 10);
            run(&mut guard, true, 10);
        }
        assert_eq!(guard.mode(), GuardrailMode::Learned);
        assert_eq!(guard.snapshot().trips, 0);
    }

    #[test]
    fn observe_only_counts_trips_but_never_forces() {
        let cfg = GuardrailConfig {
            window: 20,
            trip_after: 1,
            enforce: false,
            sample_shift: 0,
            ..GuardrailConfig::default()
        };
        let mut guard = Guardrail::new(cfg, 10_000);
        for t in 0..200u64 {
            guard.record(&req(t, t % 5, 100), 0.0, false, false);
        }
        assert_eq!(guard.mode(), GuardrailMode::LruForced);
        assert!(guard.snapshot().trips >= 1);
        assert!(!guard.forced(), "observe-only never forces");
        assert_eq!(guard.snapshot().forced_requests, 0);
    }

    #[test]
    fn shadow_probation_starts_forced_without_a_trip() {
        let cfg = GuardrailConfig {
            window: 20,
            recover_after: 1,
            start_in_fallback: true,
            sample_shift: 0,
            ..GuardrailConfig::default()
        };
        let mut guard = Guardrail::new(cfg, 10_000);
        assert!(guard.forced());
        assert_eq!(guard.snapshot().trips, 0);
        // One window of good shadow decisions releases probation (the
        // realized outcomes are LRU's — they don't count against the
        // model while it is the shadow one).
        for t in 0..20u64 {
            guard.record(&req(t, t % 5, 100), 0.9, true, false);
        }
        assert_eq!(guard.mode(), GuardrailMode::Learned);
        assert_eq!(guard.snapshot().trips, 0);
    }

    #[test]
    fn sampling_is_deterministic_and_scales_ghost_capacity() {
        let cfg = GuardrailConfig {
            sample_shift: 3,
            ..GuardrailConfig::default()
        };
        let a = Guardrail::new(cfg, 80_000);
        assert_eq!(a.lru.capacity, 10_000);
        // The sampled set is a pure function of the object id.
        let b = Guardrail::new(cfg, 80_000);
        for id in 0..1_000u64 {
            assert_eq!(a.sampled(ObjectId(id)), b.sampled(ObjectId(id)));
        }
        let hits = (0..100_000u64)
            .filter(|&id| a.sampled(ObjectId(id)))
            .count();
        // ~1/8 of ids, with generous slop.
        assert!((10_000..15_000).contains(&hits), "sampled {hits}");
    }

    #[test]
    fn doorkeeper_borrowing_skips_unseen_objects_and_counts_savings() {
        let mut guard = Guardrail::new(full_sampling(u64::MAX), 10_000);
        guard.set_borrow_doorkeeper(true);
        // First sighting: not past the doorkeeper — the ghost LRU must not
        // mint an entry, only count the avoided insert.
        guard.record_shadowed(&req(0, 1, 100), 0.5, true, false, false);
        assert!(guard.lru.entries.is_empty());
        let snap = guard.snapshot();
        assert_eq!(snap.doorkeeper_skips, 1);
        assert_eq!(snap.doorkeeper_saved_bytes, LRU_GHOST_ENTRY_BYTES);
        // Second sighting: cleared — inserted and tracked normally.
        guard.record_shadowed(&req(1, 1, 100), 0.5, true, false, true);
        assert!(guard.lru.entries.contains_key(&ObjectId(1)));
        // Residents keep hitting even if the caller reports them unseen
        // (the ghost's own membership is the tiebreaker, not the flag).
        guard.record_shadowed(&req(2, 1, 100), 0.5, true, true, false);
        let snap = guard.snapshot();
        assert_eq!(snap.doorkeeper_skips, 1, "residents are never skipped");
        assert_eq!(snap.shadow_lru_hit_bytes, 100);
    }

    #[test]
    fn record_without_borrowing_ignores_doorkeeper_evidence() {
        let mut guard = Guardrail::new(full_sampling(u64::MAX), 10_000);
        guard.record_shadowed(&req(0, 1, 100), 0.5, true, false, false);
        assert!(
            guard.lru.entries.contains_key(&ObjectId(1)),
            "without set_borrow_doorkeeper the evidence bit is inert"
        );
        assert_eq!(guard.snapshot().doorkeeper_skips, 0);
        assert_eq!(guard.snapshot().doorkeeper_saved_bytes, 0);
    }

    #[test]
    fn borrowing_saves_learned_ghost_bytes_while_forced() {
        let cfg = GuardrailConfig {
            start_in_fallback: true,
            sample_shift: 0,
            window: u64::MAX,
            ..GuardrailConfig::default()
        };
        let mut guard = Guardrail::new(cfg, 10_000);
        guard.set_borrow_doorkeeper(true);
        guard.record_shadowed(&req(0, 1, 100), 0.5, true, false, false);
        // While LruForced the learned ghost is fed too, so one unseen miss
        // avoids an insert in both ghosts.
        let snap = guard.snapshot();
        assert_eq!(
            snap.doorkeeper_saved_bytes,
            LRU_GHOST_ENTRY_BYTES + LEARNED_GHOST_ENTRY_BYTES
        );
        assert!(guard.learned.entries.is_empty());
    }

    #[test]
    fn lru_reference_matches_full_sampling_shadow() {
        let requests: Vec<Request> = (0..3_000u64)
            .map(|t| req(t, splitmix64(t) % 200, 300 + (t % 7) * 40))
            .collect();
        let reference = lru_reference_bhr(&requests, 20_000);
        let mut guard = Guardrail::new(full_sampling(u64::MAX), 20_000);
        for r in &requests {
            guard.record(r, 0.0, false, false);
        }
        let snap = guard.snapshot();
        assert!(
            (snap.shadow_lru_bhr() - reference).abs() < 1e-12,
            "shadow {} vs reference {}",
            snap.shadow_lru_bhr(),
            reference
        );
    }
}
