//! # lfo — Learning From OPT
//!
//! The paper's primary contribution (Berger, "Towards Lightweight and
//! Robust Machine Learning for CDN Caching", HotNets 2018): instead of
//! reinforcement learning with delayed rewards, *compute the offline
//! optimal decisions (OPT) for the recent past and imitate them with a
//! supervised model*.
//!
//! The crate mirrors the paper's structure:
//!
//! - [`features`] (§2.2) — the online feature vector: object size, most
//!   recent retrieval cost, free cache bytes, and the inter-request time
//!   gaps of the last 50 requests to the object (shift-invariant deltas).
//! - [`labels`] — joins feature snapshots with OPT's decisions (from the
//!   `opt` crate) into a training set.
//! - [`train`] (§2.3) — gradient-boosted decision trees (the `gbdt` crate)
//!   with LightGBM-default parameters, iterations lowered to 30.
//! - [`policy`] (§2.4) — the LFO caching policy: admit when the predicted
//!   likelihood that OPT would cache the object is ≥ the cutoff (0.5),
//!   rank residents by predicted likelihood, evict the minimum; re-score
//!   on every hit (so a hit can evict the hit object, as OPT often does).
//! - [`pipeline`] (Fig. 2) — the sliding-window loop: record W\[t\],
//!   compute OPT, train, deploy the model over W\[t+1\].
//! - [`serve`] — the multi-threaded prediction-throughput harness behind
//!   Figure 7.
//! - [`shard`] — the sharded serving layer: hash-partitioned [`LfoCache`]
//!   shards on worker threads, one shared [`ModelSlot`], aggregated
//!   metrics (`repro serve` measures it end to end).
//! - [`faults`] + [`drift`] — the robustness control plane (DESIGN.md §8):
//!   deterministic fault injection, stage supervision with bounded retries
//!   and graceful window-skip degradation, and PSI/holdout rollout gates.
//! - [`persist`] — durable model artifacts (DESIGN.md §10): checksummed
//!   envelope format, atomic [`ArtifactStore`] writes with bounded
//!   retention, and the gated warm-start restore
//!   ([`PipelineConfig::warm_start`]).
//! - [`pops`] — the multi-PoP edge/regional topology and the federated
//!   control plane (DESIGN.md §15): N edge caches missing into a shared
//!   regional tier, trained per-PoP or as shared-grid delta rollouts.
//! - [`guardrail`] — the runtime hybrid learned/LRU layer (DESIGN.md §13):
//!   a ghost-LRU shadow estimator plus a hysteresis state machine that
//!   forces a shard onto LRU whenever the learned policy's realized BHR
//!   falls below `(1−ε)·BHR_LRU − δ`, and re-arms it only after the model
//!   re-proves the bound on shadow-scored decisions.
//! - [`sketchpool`] — the fleet-shared doorkeeper (DESIGN.md §16): one
//!   lock-free CAS-advanced sketch plus a striped GCLOCK ring shared by
//!   every pooled shard (and the guardrail's ghosts), so fleet metadata
//!   scales with the budget instead of budget × shards.
//!
//! ## Quickstart
//!
//! ```
//! use cdn_trace::{GeneratorConfig, TraceGenerator};
//! use lfo::pipeline::{run_pipeline, PipelineConfig};
//!
//! let trace = TraceGenerator::new(GeneratorConfig::small(7, 6_000)).generate();
//! let mut config = PipelineConfig::default();
//! config.window = 2_000;
//! config.cache_size = 4 * 1024 * 1024;
//! let report = run_pipeline(trace.requests(), &config).unwrap();
//! // After the first window LFO runs with a trained model; see the bench
//! // crate for the full figures.
//! assert!(report.windows.len() == 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod drift;
pub mod faults;
pub mod features;
pub mod guardrail;
pub mod hierarchy;
pub mod labels;
pub mod persist;
pub mod pipeline;
pub mod policy;
pub mod pops;
pub mod serve;
pub mod shard;
pub mod sketchpool;
pub mod train;

pub use config::{CutoffMode, EvictionStrategy, LfoConfig, PolicyDesign, RetrainConfig};
pub use drift::{DriftError, DriftVerdict, FeatureSketch};
pub use faults::{FaultKind, FaultPlan, FaultPoint};
pub use features::{FeatureTracker, TrackerBudget, TrackerSnapshot, FEATURE_GAPS};
pub use guardrail::{
    lru_reference_bhr, Guardrail, GuardrailConfig, GuardrailMode, GuardrailSnapshot,
};
pub use hierarchy::{Placement, TierSpec, TieredLfoCache};
pub use persist::{
    ArtifactStore, CrashPoint, LfoArtifact, Lineage, LineageKind, PersistError, Provenance,
    StoredValidation, ARTIFACT_VERSION,
};
pub use pipeline::{
    run_pipeline, run_pipeline_serial, AccuracyGate, DeployMode, DriftGate, GateConfig,
    PersistConfig, PipelineConfig, PipelineReport, RestoreReport, RolloutDecision, StageTiming,
    SupervisionConfig, TrainKind, WindowReport,
};
pub use policy::{CompiledArtifact, LfoCache, ModelSlot, SharedOccupancy, FREE_FEATURE};
pub use pops::{
    train_fleet, EdgeSpec, FederationGate, FleetRollout, PopRollout, PopsReport, PopsTopology,
    RolloutPlan, ServedBy,
};
pub use serve::{
    prediction_throughput, prediction_throughput_engine, PredictionServer, ThroughputResult,
};
pub use shard::{
    shard_of, CacheMetrics, ShardMode, ShardParams, ShardReport, ShardStatus, ShardedLfoCache,
};
pub use sketchpool::{SharedDoorkeeper, SketchPoolStats, StripeSlot};
pub use train::{equalize_cutoff, train_window, train_window_continued, TrainedWindow};
