//! Synthetic production-like CDN trace generation.
//!
//! Substitutes for the paper's proprietary production trace. The generator
//! is fully deterministic given a seed and models the phenomena the paper
//! identifies as making CDN caching hard:
//!
//! - **Heavy-tailed popularity** per content class (Zipf with class-specific
//!   exponent), producing the long tail of one-hit wonders typical of CDN
//!   edge traffic.
//! - **Highly variable object sizes** (lognormal bodies, Pareto tails).
//! - **Popularity churn**: the rank of an object drifts over time.
//! - **Load-balancer reshuffles**: "content mix changes can happen within
//!   minutes, e.g., due to changes in how users are directed to caching
//!   servers to balance load" (§1) — modeled by replacing a fraction of the
//!   catalog with fresh objects at configurable points.
//! - **Flash crowds**: "iOS software downloads are large in size with
//!   popularity spikes on iOS update days" (§1) — modeled by routing a
//!   share of requests to a small set of fresh large objects for a bounded
//!   interval.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::classes::ContentMix;
use crate::dist::Zipf;
use crate::request::{ObjectId, Request, Trace};

/// A transient popularity spike (e.g. an OS-update release day).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Request index at which the spike begins.
    pub start: u64,
    /// Number of requests the spike lasts.
    pub duration: u64,
    /// Fraction of requests during the spike routed to the hot set.
    pub share: f64,
    /// Number of distinct fresh objects in the hot set.
    pub objects: u64,
    /// Index of the content class the hot set belongs to.
    pub class: usize,
}

/// A catalog reshuffle (load-balancer re-assignment of user population).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Reshuffle {
    /// Request index at which the reshuffle happens.
    pub at: u64,
    /// Fraction of each class's catalog replaced with fresh objects.
    pub fraction: f64,
}

/// An adversarial workload pattern aimed at a learned caching policy —
/// traffic a model trained on the benign mix has never seen (the `repro
/// adversarial` experiment replays each one with the runtime guardrail off
/// vs. on). Injected objects live in a reserved id namespace (top bit set)
/// so they can never collide with class catalogs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Adversary {
    /// Periodic burst thrash: from `start` on, every `period` requests a
    /// burst of `burst` requests routes `share` of traffic round-robin
    /// through a pool of `objects` fresh ids — a *new* pool per burst, so
    /// admitted burst objects never return and churn the cache for
    /// nothing.
    BurstThrash {
        /// Request index of the first burst.
        start: u64,
        /// Requests between burst starts.
        period: u64,
        /// Requests each burst lasts (must be ≤ `period`).
        burst: u64,
        /// Fraction of in-burst requests routed to the pool.
        share: f64,
        /// Distinct fresh objects per burst pool.
        objects: u64,
        /// Byte size of every burst object.
        size: u64,
    },
    /// Popularity inversion: at request `at` each class's rank permutation
    /// is reversed — the hottest objects become the coldest and vice
    /// versa. A recency heuristic re-learns the new order within a cache
    /// lifetime; a model keyed on the old objects' gap history does not.
    PopularityInversion {
        /// Request index of the inversion.
        at: u64,
    },
    /// Scan flood: during `[start, start + duration)`, `share` of requests
    /// go to strictly sequential ids. With `wrap == 0` every scanned object
    /// is fresh — touched exactly once and never again (a pure one-touch
    /// flood). With `wrap > 0` the scan is a *re-walked sweep* over `wrap`
    /// objects (a crawler or batch job looping over a fixed dataset): ids
    /// cycle sequentially, so every object returns after a long, constant
    /// inter-arrival gap.
    ScanFlood {
        /// Request index the scan begins.
        start: u64,
        /// Requests the scan lasts.
        duration: u64,
        /// Fraction of in-scan requests routed to the scan.
        share: f64,
        /// Byte size of every scanned object.
        size: u64,
        /// `0` = one-touch flood; otherwise the sweep width in objects.
        wrap: u64,
    },
    /// Drifted class mix: at request `at`, `reshuffle_fraction` of every
    /// class's catalog is replaced with fresh objects whose sizes are
    /// scaled by `size_scale` — a size distribution a frozen quantization
    /// grid (`BinMap`) fitted on the benign mix has never seen.
    DriftedMix {
        /// Request index of the drift.
        at: u64,
        /// Multiplier applied to newly drawn object sizes from then on.
        size_scale: f64,
        /// Fraction of each class's catalog replaced at the drift point.
        reshuffle_fraction: f64,
    },
}

/// Configuration of [`TraceGenerator`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// RNG seed; identical seeds produce identical traces.
    pub seed: u64,
    /// Number of requests to generate.
    pub num_requests: u64,
    /// The content-class mixture.
    pub mix: ContentMix,
    /// Every `churn_interval` requests, `churn_fraction` of each class's
    /// rank permutation is perturbed (popularity drift). `0` disables churn.
    pub churn_interval: u64,
    /// Fraction of ranks perturbed per churn step.
    pub churn_fraction: f64,
    /// Scheduled catalog reshuffles.
    pub reshuffles: Vec<Reshuffle>,
    /// Scheduled flash-crowd events.
    pub flash_crowds: Vec<FlashCrowd>,
    /// Scheduled adversarial patterns (empty for benign traces; an empty
    /// list leaves the generated stream bit-identical to earlier versions).
    pub adversaries: Vec<Adversary>,
}

impl GeneratorConfig {
    /// A production-like default: the paper's four-class mix with mild
    /// popularity churn and no scheduled events.
    pub fn production(seed: u64, num_requests: u64) -> Self {
        // Scale the catalog with the trace length so the one-hit-wonder
        // fraction stays realistic for short experiment traces.
        let scale = (num_requests as f64 / 1_000_000.0).clamp(0.02, 10.0);
        GeneratorConfig {
            seed,
            num_requests,
            mix: ContentMix::production(scale),
            churn_interval: 50_000,
            churn_fraction: 0.01,
            reshuffles: Vec::new(),
            flash_crowds: Vec::new(),
            adversaries: Vec::new(),
        }
    }

    /// A huge-catalog configuration: the production mix inflated ~200× so
    /// unique objects vastly outnumber what any reasonable cache (or
    /// tracker budget) can hold — the regime where per-object metadata,
    /// not hit ratio, is the scaling constraint (`repro memory`). The
    /// churn knobs match [`Self::production`].
    pub fn huge_catalog(seed: u64, num_requests: u64) -> Self {
        let scale = (num_requests as f64 / 1_000_000.0 * 200.0).clamp(0.5, 200.0);
        GeneratorConfig {
            mix: ContentMix::production(scale),
            ..GeneratorConfig::production(seed, num_requests)
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn small(seed: u64, num_requests: u64) -> Self {
        GeneratorConfig {
            seed,
            num_requests,
            mix: ContentMix::production(0.02),
            churn_interval: 0,
            churn_fraction: 0.0,
            reshuffles: Vec::new(),
            flash_crowds: Vec::new(),
            adversaries: Vec::new(),
        }
    }
}

/// Per-class mutable popularity state.
struct ClassState {
    zipf: Zipf,
    /// Rank (0-based) → object index within the class's id space.
    perm: Vec<u64>,
    /// Next unused object index (catalog can grow via reshuffles/crowds).
    next_object: u64,
}

/// Deterministic synthetic trace generator; see the module docs.
///
/// Implements [`Iterator`] so traces can be consumed streamingly; use
/// [`TraceGenerator::generate`] to materialize a [`Trace`].
pub struct TraceGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    classes: Vec<ClassState>,
    /// Lazily assigned, stable object sizes.
    sizes: HashMap<ObjectId, u64>,
    /// Active flash-crowd hot sets: (event index, object ids).
    hot_sets: Vec<(usize, Vec<ObjectId>)>,
    /// Multiplier applied to newly drawn sizes (changed by
    /// [`Adversary::DriftedMix`]; 1.0 for benign traces).
    size_scale: f64,
    next: u64,
}

/// Object ids are partitioned per class: the class index lives in the top
/// bits so ids never collide across classes.
pub(crate) const CLASS_SHIFT: u32 = 48;

/// Reserved namespace bit for adversary-injected object ids — class ids
/// are bounded by `CLASS_SHIFT`-bit indices and a handful of classes, so
/// the top bit is never set for catalog objects.
pub(crate) const ADVERSARY_BIT: u64 = 1 << 63;

impl TraceGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if an event references a class index that does not exist or if
    /// fractions lie outside `[0, 1]`.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.churn_fraction));
        for r in &config.reshuffles {
            assert!((0.0..=1.0).contains(&r.fraction), "reshuffle fraction");
        }
        for f in &config.flash_crowds {
            assert!(f.class < config.mix.classes().len(), "flash-crowd class");
            assert!((0.0..=1.0).contains(&f.share), "flash-crowd share");
        }
        for a in &config.adversaries {
            match *a {
                Adversary::BurstThrash {
                    period,
                    burst,
                    share,
                    objects,
                    size,
                    ..
                } => {
                    assert!(period > 0 && burst <= period, "burst-thrash period");
                    assert!((0.0..=1.0).contains(&share), "burst-thrash share");
                    assert!(objects > 0 && size > 0, "burst-thrash pool");
                }
                Adversary::PopularityInversion { .. } => {}
                Adversary::ScanFlood { share, size, .. } => {
                    assert!((0.0..=1.0).contains(&share), "scan-flood share");
                    assert!(size > 0, "scan-flood size");
                }
                Adversary::DriftedMix {
                    size_scale,
                    reshuffle_fraction,
                    ..
                } => {
                    assert!(size_scale > 0.0, "drifted-mix size scale");
                    assert!(
                        (0.0..=1.0).contains(&reshuffle_fraction),
                        "drifted-mix fraction"
                    );
                }
            }
        }
        let rng = StdRng::seed_from_u64(config.seed);
        let classes = config
            .mix
            .classes()
            .iter()
            .map(|c| ClassState {
                zipf: Zipf::new(c.num_objects, c.zipf_alpha),
                perm: (0..c.num_objects).collect(),
                next_object: c.num_objects,
            })
            .collect();
        TraceGenerator {
            config,
            rng,
            classes,
            sizes: HashMap::new(),
            hot_sets: Vec::new(),
            size_scale: 1.0,
            next: 0,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Materializes the full trace.
    pub fn generate(self) -> Trace {
        self.collect()
    }

    fn object_id(class: usize, index: u64) -> ObjectId {
        debug_assert!(index < (1 << CLASS_SHIFT));
        ObjectId(((class as u64) << CLASS_SHIFT) | index)
    }

    /// Id for an adversary-injected object: the reserved top bit plus the
    /// adversary's index, so injected streams collide neither with class
    /// catalogs nor with each other.
    fn adversary_id(adversary: usize, index: u64) -> ObjectId {
        debug_assert!(adversary < (1 << 8), "adversary index fits 8 bits");
        debug_assert!(index < (1 << 55));
        ObjectId(ADVERSARY_BIT | ((adversary as u64) << 55) | index)
    }

    /// Stable size for an object, drawn from its class on first touch.
    fn size_of(&mut self, class: usize, id: ObjectId) -> u64 {
        match self.sizes.get(&id) {
            Some(&s) => s,
            None => {
                let base = self.config.mix.classes()[class].sizes.sample(&mut self.rng);
                let s = ((base as f64 * self.size_scale) as u64).max(1);
                self.sizes.insert(id, s);
                s
            }
        }
    }

    fn apply_churn(&mut self) {
        for state in &mut self.classes {
            let n = state.perm.len();
            if n < 2 {
                continue;
            }
            let swaps = ((n as f64) * self.config.churn_fraction) as usize;
            for _ in 0..swaps {
                let a = self.rng.gen_range(0..n);
                let b = self.rng.gen_range(0..n);
                state.perm.swap(a, b);
            }
        }
    }

    fn apply_reshuffle(&mut self, fraction: f64) {
        for state in &mut self.classes {
            let n = state.perm.len();
            let replace = ((n as f64) * fraction) as usize;
            for _ in 0..replace {
                let slot = self.rng.gen_range(0..n);
                state.perm[slot] = state.next_object;
                state.next_object += 1;
            }
        }
    }

    fn start_flash_crowd(&mut self, event_index: usize) {
        let ev = self.config.flash_crowds[event_index].clone();
        let state = &mut self.classes[ev.class];
        let ids: Vec<ObjectId> = (0..ev.objects)
            .map(|_| {
                let idx = state.next_object;
                state.next_object += 1;
                Self::object_id(ev.class, idx)
            })
            .collect();
        self.hot_sets.push((event_index, ids));
    }

    fn step(&mut self) -> Request {
        let t = self.next;
        self.next += 1;

        // Scheduled dynamics.
        if self.config.churn_interval > 0 && t > 0 && t.is_multiple_of(self.config.churn_interval) {
            self.apply_churn();
        }
        let reshuffle_fraction: Vec<f64> = self
            .config
            .reshuffles
            .iter()
            .filter(|r| r.at == t)
            .map(|r| r.fraction)
            .collect();
        for fraction in reshuffle_fraction {
            self.apply_reshuffle(fraction);
        }
        let starting: Vec<usize> = self
            .config
            .flash_crowds
            .iter()
            .enumerate()
            .filter(|(_, f)| f.start == t)
            .map(|(i, _)| i)
            .collect();
        for i in starting {
            self.start_flash_crowd(i);
        }
        self.hot_sets.retain(|(i, _)| {
            let ev = &self.config.flash_crowds[*i];
            t < ev.start + ev.duration
        });

        // Adversarial point events (catalog mutations), then injected
        // traffic. Injected streams take precedence over flash crowds —
        // the adversary controls its share of the request stream outright.
        for k in 0..self.config.adversaries.len() {
            match self.config.adversaries[k] {
                Adversary::PopularityInversion { at } if at == t => {
                    for state in &mut self.classes {
                        state.perm.reverse();
                    }
                }
                Adversary::DriftedMix {
                    at,
                    size_scale,
                    reshuffle_fraction,
                } if at == t => {
                    self.size_scale = size_scale;
                    self.apply_reshuffle(reshuffle_fraction);
                }
                _ => {}
            }
        }
        for k in 0..self.config.adversaries.len() {
            match self.config.adversaries[k] {
                Adversary::BurstThrash {
                    start,
                    period,
                    burst,
                    share,
                    objects,
                    size,
                } if t >= start
                    && (t - start) % period < burst
                    && self.rng.gen::<f64>() < share =>
                {
                    // A fresh pool per burst, cycled round-robin by the
                    // in-burst position — ids are a pure function of t,
                    // so the stream is deterministic and stateless.
                    let burst_number = (t - start) / period;
                    let position = (t - start) % period;
                    let index = burst_number * objects + position % objects;
                    return Request {
                        time: t,
                        object: Self::adversary_id(k, index),
                        size,
                    };
                }
                Adversary::ScanFlood {
                    start,
                    duration,
                    share,
                    size,
                    wrap,
                } if t >= start && t < start + duration && self.rng.gen::<f64>() < share => {
                    // Strictly sequential ids; a wrapping sweep revisits
                    // the same `wrap` objects in order, a one-touch
                    // flood never repeats an id.
                    let offset = t - start;
                    let index = if wrap > 0 { offset % wrap } else { offset };
                    return Request {
                        time: t,
                        object: Self::adversary_id(k, index),
                        size,
                    };
                }
                _ => {}
            }
        }

        // Flash-crowd traffic takes its share first.
        let mut chosen: Option<(usize, ObjectId)> = None;
        if !self.hot_sets.is_empty() {
            // Iterate without borrowing self mutably inside the loop.
            for slot in 0..self.hot_sets.len() {
                let (event_index, len) = {
                    let (i, ids) = &self.hot_sets[slot];
                    (*i, ids.len())
                };
                let ev = &self.config.flash_crowds[event_index];
                if self.rng.gen::<f64>() < ev.share {
                    let pick = self.rng.gen_range(0..len);
                    let id = self.hot_sets[slot].1[pick];
                    chosen = Some((ev.class, id));
                    break;
                }
            }
        }

        let (class, id) = chosen.unwrap_or_else(|| {
            let class = self.config.mix.pick(&mut self.rng);
            let rank = self.classes[class].zipf.sample(&mut self.rng) - 1;
            let index = self.classes[class].perm[rank as usize];
            (class, Self::object_id(class, index))
        });
        let size = self.size_of(class, id);
        Request {
            time: t,
            object: id,
            size,
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.next >= self.config.num_requests {
            return None;
        }
        Some(self.step())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.config.num_requests - self.next) as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn deterministic_per_seed() {
        let a = TraceGenerator::new(GeneratorConfig::small(7, 5_000)).generate();
        let b = TraceGenerator::new(GeneratorConfig::small(7, 5_000)).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(GeneratorConfig::small(1, 5_000)).generate();
        let b = TraceGenerator::new(GeneratorConfig::small(2, 5_000)).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn emits_requested_count_with_sequential_times() {
        let t = TraceGenerator::new(GeneratorConfig::small(3, 1_234)).generate();
        assert_eq!(t.len(), 1_234);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.time, i as u64);
            assert!(r.size > 0);
        }
    }

    #[test]
    fn object_sizes_are_stable_across_requests() {
        let t = TraceGenerator::new(GeneratorConfig::small(4, 20_000)).generate();
        let mut seen: HashMap<ObjectId, u64> = HashMap::new();
        for r in &t {
            let prev = seen.insert(r.object, r.size);
            if let Some(p) = prev {
                assert_eq!(p, r.size, "object {:?} changed size", r.object);
            }
        }
    }

    #[test]
    fn huge_catalog_spreads_requests_over_many_more_objects() {
        let n = 30_000;
        let huge = TraceStats::from_trace(
            &TraceGenerator::new(GeneratorConfig::huge_catalog(9, n)).generate(),
        );
        let prod = TraceStats::from_trace(
            &TraceGenerator::new(GeneratorConfig::production(9, n)).generate(),
        );
        assert!(
            huge.unique_objects > 3 * prod.unique_objects,
            "huge {} vs production {}",
            huge.unique_objects,
            prod.unique_objects
        );
        assert!(huge.one_hit_wonder_ratio > prod.one_hit_wonder_ratio);
    }

    #[test]
    fn popularity_is_skewed() {
        let t = TraceGenerator::new(GeneratorConfig::small(5, 50_000)).generate();
        let stats = TraceStats::from_trace(&t);
        // Top 1% of objects should account for far more than 1% of requests.
        assert!(
            stats.top_fraction_share(0.01) > 0.10,
            "share = {}",
            stats.top_fraction_share(0.01)
        );
    }

    #[test]
    fn reshuffle_introduces_fresh_objects() {
        let mut cfg = GeneratorConfig::small(6, 30_000);
        cfg.reshuffles = vec![Reshuffle {
            at: 15_000,
            fraction: 0.5,
        }];
        let t = TraceGenerator::new(cfg).generate();
        let first: std::collections::HashSet<_> =
            t.window(0, 15_000).iter().map(|r| r.object).collect();
        let fresh = t
            .window(15_000, 30_000)
            .iter()
            .filter(|r| !first.contains(&r.object))
            .count();
        // With half the catalog replaced, plenty of unseen objects appear.
        assert!(fresh > 2_000, "fresh = {fresh}");
    }

    #[test]
    fn flash_crowd_concentrates_traffic() {
        let mut cfg = GeneratorConfig::small(8, 30_000);
        cfg.flash_crowds = vec![FlashCrowd {
            start: 10_000,
            duration: 5_000,
            share: 0.5,
            objects: 4,
            class: 3,
        }];
        let t = TraceGenerator::new(cfg).generate();
        // During the crowd, the 4 hot objects absorb ~half the requests.
        let mut counts: HashMap<ObjectId, usize> = HashMap::new();
        for r in t.window(10_000, 15_000) {
            *counts.entry(r.object).or_default() += 1;
        }
        let mut top: Vec<usize> = counts.values().copied().collect();
        top.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = top.iter().take(4).sum();
        assert!(top4 > 2_000, "top4 = {top4}");
        // After the crowd ends, they fade out.
        let mut after: HashMap<ObjectId, usize> = HashMap::new();
        for r in t.window(15_000, 30_000) {
            *after.entry(r.object).or_default() += 1;
        }
        let mut hot: Vec<_> = counts.iter().collect();
        hot.sort_by(|a, b| b.1.cmp(a.1));
        let hottest = *hot[0].0;
        assert!(after.get(&hottest).copied().unwrap_or(0) < 100);
    }

    #[test]
    fn class_ids_do_not_collide() {
        let t = TraceGenerator::new(GeneratorConfig::small(9, 10_000)).generate();
        for r in &t {
            let class = r.object.0 >> CLASS_SHIFT;
            assert!(class < 4, "class bits {class}");
        }
    }

    #[test]
    fn streaming_equals_materialized() {
        let cfg = GeneratorConfig::small(10, 2_000);
        let streamed: Vec<Request> = TraceGenerator::new(cfg.clone()).collect();
        let materialized = TraceGenerator::new(cfg).generate();
        assert_eq!(streamed, materialized.into_requests());
    }

    #[test]
    fn adversary_free_config_is_bit_identical_to_before() {
        // The adversary hooks must consume no RNG draws when the list is
        // empty: same seed, same trace, with or without the field.
        let base = TraceGenerator::new(GeneratorConfig::small(7, 5_000)).generate();
        let mut cfg = GeneratorConfig::small(7, 5_000);
        cfg.adversaries = Vec::new();
        assert_eq!(base, TraceGenerator::new(cfg).generate());
    }

    #[test]
    fn scan_flood_touches_each_object_exactly_once() {
        let mut cfg = GeneratorConfig::small(12, 20_000);
        cfg.adversaries = vec![Adversary::ScanFlood {
            start: 5_000,
            duration: 10_000,
            share: 0.5,
            size: 64 * 1024,
            wrap: 0,
        }];
        let t = TraceGenerator::new(cfg).generate();
        let mut scanned = 0usize;
        let mut seen = std::collections::HashSet::new();
        for r in &t {
            if r.object.0 & ADVERSARY_BIT != 0 {
                assert!((5_000..15_000).contains(&r.time), "scan outside window");
                assert_eq!(r.size, 64 * 1024);
                assert!(seen.insert(r.object), "object {:?} re-scanned", r.object);
                scanned += 1;
            }
        }
        // ~half of the 10k in-scan requests route to the scan.
        assert!((3_000..=7_000).contains(&scanned), "scanned = {scanned}");
    }

    #[test]
    fn wrapping_scan_sweeps_the_same_objects_repeatedly() {
        let mut cfg = GeneratorConfig::small(12, 20_000);
        cfg.adversaries = vec![Adversary::ScanFlood {
            start: 5_000,
            duration: 10_000,
            share: 1.0,
            size: 64 * 1024,
            wrap: 100,
        }];
        let t = TraceGenerator::new(cfg).generate();
        let mut touches = std::collections::HashMap::new();
        let mut last_index = None;
        for r in &t {
            if r.object.0 & ADVERSARY_BIT != 0 {
                let index = r.object.0 & ((1u64 << 55) - 1);
                *touches.entry(index).or_insert(0u64) += 1;
                // Strictly sequential modulo the sweep width.
                if let Some(prev) = last_index {
                    assert_eq!(index, (prev + 1) % 100, "sweep out of order");
                }
                last_index = Some(index);
            }
        }
        // share = 1.0: all 10k in-scan requests sweep 100 objects, so
        // every object is revisited ~100 times.
        assert_eq!(touches.len(), 100);
        assert!(touches.values().all(|&c| c >= 99));
    }

    #[test]
    fn burst_thrash_cycles_a_fresh_pool_per_burst() {
        let mut cfg = GeneratorConfig::small(13, 20_000);
        cfg.adversaries = vec![Adversary::BurstThrash {
            start: 2_000,
            period: 4_000,
            burst: 1_000,
            share: 1.0,
            objects: 8,
            size: 1024,
        }];
        let t = TraceGenerator::new(cfg).generate();
        // Pools from distinct bursts are disjoint; within a burst exactly
        // `objects` distinct ids appear.
        let pool = |from: u64, to: u64| -> std::collections::HashSet<ObjectId> {
            t.iter()
                .filter(|r| r.object.0 & ADVERSARY_BIT != 0 && (from..to).contains(&r.time))
                .map(|r| r.object)
                .collect()
        };
        let first = pool(2_000, 3_000);
        let second = pool(6_000, 7_000);
        assert_eq!(first.len(), 8);
        assert_eq!(second.len(), 8);
        assert!(first.is_disjoint(&second), "burst pools must be fresh");
        // Outside bursts, no injected traffic.
        assert!(pool(3_000, 6_000).is_empty());
    }

    #[test]
    fn popularity_inversion_swaps_hot_and_cold() {
        let mut cfg = GeneratorConfig::small(14, 40_000);
        cfg.adversaries = vec![Adversary::PopularityInversion { at: 20_000 }];
        let t = TraceGenerator::new(cfg).generate();
        let count = |from: u64, to: u64| -> HashMap<ObjectId, usize> {
            let mut c = HashMap::new();
            for r in t.iter().filter(|r| (from..to).contains(&r.time)) {
                *c.entry(r.object).or_default() += 1;
            }
            c
        };
        let before = count(0, 20_000);
        let after = count(20_000, 40_000);
        let hottest = |c: &HashMap<ObjectId, usize>| -> ObjectId {
            *c.iter().max_by_key(|(_, n)| **n).unwrap().0
        };
        let hot_before = hottest(&before);
        let hot_after = hottest(&after);
        assert_ne!(hot_before, hot_after, "inversion must dethrone the head");
        // The old head fades to (near) nothing after the inversion.
        let residual = after.get(&hot_before).copied().unwrap_or(0);
        assert!(
            residual * 20 < before[&hot_before],
            "old head still hot: {residual} vs {}",
            before[&hot_before]
        );
    }

    #[test]
    fn drifted_mix_scales_fresh_object_sizes() {
        let mut cfg = GeneratorConfig::small(15, 40_000);
        cfg.adversaries = vec![Adversary::DriftedMix {
            at: 20_000,
            size_scale: 64.0,
            reshuffle_fraction: 1.0,
        }];
        let t = TraceGenerator::new(cfg).generate();
        let mean = |from: u64, to: u64| -> f64 {
            let (mut sum, mut n) = (0u64, 0u64);
            let mut seen = std::collections::HashSet::new();
            for r in t.iter().filter(|r| (from..to).contains(&r.time)) {
                if seen.insert(r.object) {
                    sum += r.size;
                    n += 1;
                }
            }
            sum as f64 / n as f64
        };
        let before = mean(0, 20_000);
        let after = mean(20_000, 40_000);
        // The full reshuffle makes the post-drift catalog (almost) entirely
        // fresh, so mean object size jumps by roughly the scale factor.
        assert!(
            after > before * 8.0,
            "sizes did not drift: before {before:.0}, after {after:.0}"
        );
    }

    #[test]
    fn size_hint_is_exact() {
        let mut g = TraceGenerator::new(GeneratorConfig::small(11, 100));
        assert_eq!(g.size_hint(), (100, Some(100)));
        g.next();
        assert_eq!(g.size_hint(), (99, Some(99)));
    }
}
