//! Synthetic production-like CDN trace generation.
//!
//! Substitutes for the paper's proprietary production trace. The generator
//! is fully deterministic given a seed and models the phenomena the paper
//! identifies as making CDN caching hard:
//!
//! - **Heavy-tailed popularity** per content class (Zipf with class-specific
//!   exponent), producing the long tail of one-hit wonders typical of CDN
//!   edge traffic.
//! - **Highly variable object sizes** (lognormal bodies, Pareto tails).
//! - **Popularity churn**: the rank of an object drifts over time.
//! - **Load-balancer reshuffles**: "content mix changes can happen within
//!   minutes, e.g., due to changes in how users are directed to caching
//!   servers to balance load" (§1) — modeled by replacing a fraction of the
//!   catalog with fresh objects at configurable points.
//! - **Flash crowds**: "iOS software downloads are large in size with
//!   popularity spikes on iOS update days" (§1) — modeled by routing a
//!   share of requests to a small set of fresh large objects for a bounded
//!   interval.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::classes::ContentMix;
use crate::dist::Zipf;
use crate::request::{ObjectId, Request, Trace};

/// A transient popularity spike (e.g. an OS-update release day).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// Request index at which the spike begins.
    pub start: u64,
    /// Number of requests the spike lasts.
    pub duration: u64,
    /// Fraction of requests during the spike routed to the hot set.
    pub share: f64,
    /// Number of distinct fresh objects in the hot set.
    pub objects: u64,
    /// Index of the content class the hot set belongs to.
    pub class: usize,
}

/// A catalog reshuffle (load-balancer re-assignment of user population).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Reshuffle {
    /// Request index at which the reshuffle happens.
    pub at: u64,
    /// Fraction of each class's catalog replaced with fresh objects.
    pub fraction: f64,
}

/// Configuration of [`TraceGenerator`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// RNG seed; identical seeds produce identical traces.
    pub seed: u64,
    /// Number of requests to generate.
    pub num_requests: u64,
    /// The content-class mixture.
    pub mix: ContentMix,
    /// Every `churn_interval` requests, `churn_fraction` of each class's
    /// rank permutation is perturbed (popularity drift). `0` disables churn.
    pub churn_interval: u64,
    /// Fraction of ranks perturbed per churn step.
    pub churn_fraction: f64,
    /// Scheduled catalog reshuffles.
    pub reshuffles: Vec<Reshuffle>,
    /// Scheduled flash-crowd events.
    pub flash_crowds: Vec<FlashCrowd>,
}

impl GeneratorConfig {
    /// A production-like default: the paper's four-class mix with mild
    /// popularity churn and no scheduled events.
    pub fn production(seed: u64, num_requests: u64) -> Self {
        // Scale the catalog with the trace length so the one-hit-wonder
        // fraction stays realistic for short experiment traces.
        let scale = (num_requests as f64 / 1_000_000.0).clamp(0.02, 10.0);
        GeneratorConfig {
            seed,
            num_requests,
            mix: ContentMix::production(scale),
            churn_interval: 50_000,
            churn_fraction: 0.01,
            reshuffles: Vec::new(),
            flash_crowds: Vec::new(),
        }
    }

    /// A small, fast configuration for unit tests.
    pub fn small(seed: u64, num_requests: u64) -> Self {
        GeneratorConfig {
            seed,
            num_requests,
            mix: ContentMix::production(0.02),
            churn_interval: 0,
            churn_fraction: 0.0,
            reshuffles: Vec::new(),
            flash_crowds: Vec::new(),
        }
    }
}

/// Per-class mutable popularity state.
struct ClassState {
    zipf: Zipf,
    /// Rank (0-based) → object index within the class's id space.
    perm: Vec<u64>,
    /// Next unused object index (catalog can grow via reshuffles/crowds).
    next_object: u64,
}

/// Deterministic synthetic trace generator; see the module docs.
///
/// Implements [`Iterator`] so traces can be consumed streamingly; use
/// [`TraceGenerator::generate`] to materialize a [`Trace`].
pub struct TraceGenerator {
    config: GeneratorConfig,
    rng: StdRng,
    classes: Vec<ClassState>,
    /// Lazily assigned, stable object sizes.
    sizes: HashMap<ObjectId, u64>,
    /// Active flash-crowd hot sets: (event index, object ids).
    hot_sets: Vec<(usize, Vec<ObjectId>)>,
    next: u64,
}

/// Object ids are partitioned per class: the class index lives in the top
/// bits so ids never collide across classes.
const CLASS_SHIFT: u32 = 48;

impl TraceGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if an event references a class index that does not exist or if
    /// fractions lie outside `[0, 1]`.
    pub fn new(config: GeneratorConfig) -> Self {
        assert!((0.0..=1.0).contains(&config.churn_fraction));
        for r in &config.reshuffles {
            assert!((0.0..=1.0).contains(&r.fraction), "reshuffle fraction");
        }
        for f in &config.flash_crowds {
            assert!(f.class < config.mix.classes().len(), "flash-crowd class");
            assert!((0.0..=1.0).contains(&f.share), "flash-crowd share");
        }
        let rng = StdRng::seed_from_u64(config.seed);
        let classes = config
            .mix
            .classes()
            .iter()
            .map(|c| ClassState {
                zipf: Zipf::new(c.num_objects, c.zipf_alpha),
                perm: (0..c.num_objects).collect(),
                next_object: c.num_objects,
            })
            .collect();
        TraceGenerator {
            config,
            rng,
            classes,
            sizes: HashMap::new(),
            hot_sets: Vec::new(),
            next: 0,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Materializes the full trace.
    pub fn generate(self) -> Trace {
        self.collect()
    }

    fn object_id(class: usize, index: u64) -> ObjectId {
        debug_assert!(index < (1 << CLASS_SHIFT));
        ObjectId(((class as u64) << CLASS_SHIFT) | index)
    }

    /// Stable size for an object, drawn from its class on first touch.
    fn size_of(&mut self, class: usize, id: ObjectId) -> u64 {
        match self.sizes.get(&id) {
            Some(&s) => s,
            None => {
                let s = self.config.mix.classes()[class].sizes.sample(&mut self.rng);
                self.sizes.insert(id, s);
                s
            }
        }
    }

    fn apply_churn(&mut self) {
        for state in &mut self.classes {
            let n = state.perm.len();
            if n < 2 {
                continue;
            }
            let swaps = ((n as f64) * self.config.churn_fraction) as usize;
            for _ in 0..swaps {
                let a = self.rng.gen_range(0..n);
                let b = self.rng.gen_range(0..n);
                state.perm.swap(a, b);
            }
        }
    }

    fn apply_reshuffle(&mut self, fraction: f64) {
        for state in &mut self.classes {
            let n = state.perm.len();
            let replace = ((n as f64) * fraction) as usize;
            for _ in 0..replace {
                let slot = self.rng.gen_range(0..n);
                state.perm[slot] = state.next_object;
                state.next_object += 1;
            }
        }
    }

    fn start_flash_crowd(&mut self, event_index: usize) {
        let ev = self.config.flash_crowds[event_index].clone();
        let state = &mut self.classes[ev.class];
        let ids: Vec<ObjectId> = (0..ev.objects)
            .map(|_| {
                let idx = state.next_object;
                state.next_object += 1;
                Self::object_id(ev.class, idx)
            })
            .collect();
        self.hot_sets.push((event_index, ids));
    }

    fn step(&mut self) -> Request {
        let t = self.next;
        self.next += 1;

        // Scheduled dynamics.
        if self.config.churn_interval > 0 && t > 0 && t.is_multiple_of(self.config.churn_interval) {
            self.apply_churn();
        }
        let reshuffle_fraction: Vec<f64> = self
            .config
            .reshuffles
            .iter()
            .filter(|r| r.at == t)
            .map(|r| r.fraction)
            .collect();
        for fraction in reshuffle_fraction {
            self.apply_reshuffle(fraction);
        }
        let starting: Vec<usize> = self
            .config
            .flash_crowds
            .iter()
            .enumerate()
            .filter(|(_, f)| f.start == t)
            .map(|(i, _)| i)
            .collect();
        for i in starting {
            self.start_flash_crowd(i);
        }
        self.hot_sets.retain(|(i, _)| {
            let ev = &self.config.flash_crowds[*i];
            t < ev.start + ev.duration
        });

        // Flash-crowd traffic takes its share first.
        let mut chosen: Option<(usize, ObjectId)> = None;
        if !self.hot_sets.is_empty() {
            // Iterate without borrowing self mutably inside the loop.
            for slot in 0..self.hot_sets.len() {
                let (event_index, len) = {
                    let (i, ids) = &self.hot_sets[slot];
                    (*i, ids.len())
                };
                let ev = &self.config.flash_crowds[event_index];
                if self.rng.gen::<f64>() < ev.share {
                    let pick = self.rng.gen_range(0..len);
                    let id = self.hot_sets[slot].1[pick];
                    chosen = Some((ev.class, id));
                    break;
                }
            }
        }

        let (class, id) = chosen.unwrap_or_else(|| {
            let class = self.config.mix.pick(&mut self.rng);
            let rank = self.classes[class].zipf.sample(&mut self.rng) - 1;
            let index = self.classes[class].perm[rank as usize];
            (class, Self::object_id(class, index))
        });
        let size = self.size_of(class, id);
        Request {
            time: t,
            object: id,
            size,
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        if self.next >= self.config.num_requests {
            return None;
        }
        Some(self.step())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.config.num_requests - self.next) as usize;
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn deterministic_per_seed() {
        let a = TraceGenerator::new(GeneratorConfig::small(7, 5_000)).generate();
        let b = TraceGenerator::new(GeneratorConfig::small(7, 5_000)).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceGenerator::new(GeneratorConfig::small(1, 5_000)).generate();
        let b = TraceGenerator::new(GeneratorConfig::small(2, 5_000)).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn emits_requested_count_with_sequential_times() {
        let t = TraceGenerator::new(GeneratorConfig::small(3, 1_234)).generate();
        assert_eq!(t.len(), 1_234);
        for (i, r) in t.iter().enumerate() {
            assert_eq!(r.time, i as u64);
            assert!(r.size > 0);
        }
    }

    #[test]
    fn object_sizes_are_stable_across_requests() {
        let t = TraceGenerator::new(GeneratorConfig::small(4, 20_000)).generate();
        let mut seen: HashMap<ObjectId, u64> = HashMap::new();
        for r in &t {
            let prev = seen.insert(r.object, r.size);
            if let Some(p) = prev {
                assert_eq!(p, r.size, "object {:?} changed size", r.object);
            }
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let t = TraceGenerator::new(GeneratorConfig::small(5, 50_000)).generate();
        let stats = TraceStats::from_trace(&t);
        // Top 1% of objects should account for far more than 1% of requests.
        assert!(
            stats.top_fraction_share(0.01) > 0.10,
            "share = {}",
            stats.top_fraction_share(0.01)
        );
    }

    #[test]
    fn reshuffle_introduces_fresh_objects() {
        let mut cfg = GeneratorConfig::small(6, 30_000);
        cfg.reshuffles = vec![Reshuffle {
            at: 15_000,
            fraction: 0.5,
        }];
        let t = TraceGenerator::new(cfg).generate();
        let first: std::collections::HashSet<_> =
            t.window(0, 15_000).iter().map(|r| r.object).collect();
        let fresh = t
            .window(15_000, 30_000)
            .iter()
            .filter(|r| !first.contains(&r.object))
            .count();
        // With half the catalog replaced, plenty of unseen objects appear.
        assert!(fresh > 2_000, "fresh = {fresh}");
    }

    #[test]
    fn flash_crowd_concentrates_traffic() {
        let mut cfg = GeneratorConfig::small(8, 30_000);
        cfg.flash_crowds = vec![FlashCrowd {
            start: 10_000,
            duration: 5_000,
            share: 0.5,
            objects: 4,
            class: 3,
        }];
        let t = TraceGenerator::new(cfg).generate();
        // During the crowd, the 4 hot objects absorb ~half the requests.
        let mut counts: HashMap<ObjectId, usize> = HashMap::new();
        for r in t.window(10_000, 15_000) {
            *counts.entry(r.object).or_default() += 1;
        }
        let mut top: Vec<usize> = counts.values().copied().collect();
        top.sort_unstable_by(|a, b| b.cmp(a));
        let top4: usize = top.iter().take(4).sum();
        assert!(top4 > 2_000, "top4 = {top4}");
        // After the crowd ends, they fade out.
        let mut after: HashMap<ObjectId, usize> = HashMap::new();
        for r in t.window(15_000, 30_000) {
            *after.entry(r.object).or_default() += 1;
        }
        let mut hot: Vec<_> = counts.iter().collect();
        hot.sort_by(|a, b| b.1.cmp(a.1));
        let hottest = *hot[0].0;
        assert!(after.get(&hottest).copied().unwrap_or(0) < 100);
    }

    #[test]
    fn class_ids_do_not_collide() {
        let t = TraceGenerator::new(GeneratorConfig::small(9, 10_000)).generate();
        for r in &t {
            let class = r.object.0 >> CLASS_SHIFT;
            assert!(class < 4, "class bits {class}");
        }
    }

    #[test]
    fn streaming_equals_materialized() {
        let cfg = GeneratorConfig::small(10, 2_000);
        let streamed: Vec<Request> = TraceGenerator::new(cfg.clone()).collect();
        let materialized = TraceGenerator::new(cfg).generate();
        assert_eq!(streamed, materialized.into_requests());
    }

    #[test]
    fn size_hint_is_exact() {
        let mut g = TraceGenerator::new(GeneratorConfig::small(11, 100));
        assert_eq!(g.size_hint(), (100, Some(100)));
        g.next();
        assert_eq!(g.size_hint(), (99, Some(99)));
    }
}
