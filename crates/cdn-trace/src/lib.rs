//! # cdn-trace — CDN request-trace substrate
//!
//! The paper evaluates LFO on a proprietary 2016 production trace (500M
//! requests from a top-ten US website, recorded on a San Francisco CDN
//! server). That trace is not available, so this crate provides the closest
//! synthetic equivalent: a seeded, deterministic generator of
//! production-like CDN request streams, plus the request model, trace I/O,
//! and the statistics needed to check that generated traces have the right
//! shape (heavy-tailed popularity, highly variable sizes, one-hit wonders,
//! time-varying content mix).
//!
//! Key pieces:
//!
//! - [`Request`] / [`ObjectId`] / [`CostModel`] — the request model shared
//!   by every other crate (§2.1 of the paper: cost = size optimizes byte hit
//!   ratio, cost = 1 optimizes object hit ratio).
//! - [`generator::TraceGenerator`] — content-class mixture (web, photo,
//!   video, software download), Zipf-like popularity, popularity churn,
//!   load-balancer reshuffles and flash-crowd events.
//! - [`pops::PopTraceGenerator`] — multi-PoP traffic: per-PoP popularity
//!   skew, catalog overlap, and scheduled popularity migrations between
//!   PoPs, merged into one deterministic round-robin stream.
//! - [`io`] — webcachesim-compatible text format and a compact binary
//!   format.
//! - [`stats`] — rank-frequency slope, one-hit-wonder rate, footprint.
//! - [`example`] — the paper's Figure 3 twelve-request worked example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classes;
pub mod dist;
pub mod example;
pub mod generator;
pub mod io;
pub mod pops;
pub mod request;
pub mod stack_distance;
pub mod stats;

pub use classes::{ContentClass, ContentMix};
pub use generator::{Adversary, FlashCrowd, GeneratorConfig, Reshuffle, TraceGenerator};
pub use pops::{split_by_pop, PopMigration, PopRequest, PopTraceConfig, PopTraceGenerator};
pub use request::{CostModel, ObjectId, Request, Trace};
pub use stack_distance::{stack_distances, StackDistances};
pub use stats::TraceStats;
