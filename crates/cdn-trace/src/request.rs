//! The request model shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cacheable object.
///
/// Production CDN traces anonymize URLs to opaque ids; we do the same.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for ObjectId {
    fn from(v: u64) -> Self {
        ObjectId(v)
    }
}

/// One request of a CDN trace.
///
/// `time` is a logical timestamp; for the synthetic traces it equals the
/// request's sequence number, matching the paper's trace format of
/// "sequence number, object identifier, object size in bytes".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Logical timestamp (sequence number for synthetic traces).
    pub time: u64,
    /// The requested object.
    pub object: ObjectId,
    /// Object size in bytes. Always positive.
    pub size: u64,
}

impl Request {
    /// Convenience constructor.
    pub fn new(time: u64, object: impl Into<ObjectId>, size: u64) -> Self {
        debug_assert!(size > 0, "object size must be positive");
        Request {
            time,
            object: object.into(),
            size,
        }
    }
}

/// How the miss cost `C_i` of an object is derived (paper §2.1).
///
/// OPT minimizes the total cost of cache misses; the cost model selects the
/// metric this optimizes:
///
/// - [`CostModel::ByteHitRatio`] sets `C_i = S_i` (cost equals size), so
///   minimizing miss cost maximizes the byte hit ratio — the CDN-operator
///   metric the paper optimizes in Figure 6.
/// - [`CostModel::ObjectHitRatio`] sets `C_i = 1`, maximizing the object hit
///   ratio.
/// - [`CostModel::PerByteLatency`] models cost as a retrieval-latency proxy:
///   a fixed per-request overhead plus a per-byte transfer term, following
///   the GD-Wheel/GDSF line of work the paper cites.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum CostModel {
    /// `C_i = S_i`: optimize the byte hit ratio (the paper's main metric).
    #[default]
    ByteHitRatio,
    /// `C_i = 1`: optimize the object hit ratio.
    ObjectHitRatio,
    /// `C_i = fixed + per_byte * S_i`: retrieval-latency proxy.
    PerByteLatency {
        /// Fixed per-miss cost (e.g. origin RTT), in abstract cost units.
        fixed: u64,
        /// Additional cost per KiB of object size.
        per_kib: u64,
    },
}

impl CostModel {
    /// The miss cost of an object of `size` bytes under this model.
    pub fn cost(&self, size: u64) -> u64 {
        match *self {
            CostModel::ByteHitRatio => size,
            CostModel::ObjectHitRatio => 1,
            CostModel::PerByteLatency { fixed, per_kib } => fixed + per_kib * size.div_ceil(1024),
        }
    }
}

/// An in-memory request trace.
///
/// A thin wrapper over `Vec<Request>` that enforces positive sizes and
/// provides the windowing operations the LFO pipeline needs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps an existing request vector.
    ///
    /// # Panics
    ///
    /// Panics if any request has size zero.
    pub fn from_requests(requests: Vec<Request>) -> Self {
        assert!(
            requests.iter().all(|r| r.size > 0),
            "all object sizes must be positive"
        );
        Trace { requests }
    }

    /// Appends one request.
    pub fn push(&mut self, request: Request) {
        debug_assert!(request.size > 0);
        self.requests.push(request);
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests as a slice.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Iterates over the requests.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// A sub-trace view over `[start, end)` request indices (clamped).
    pub fn window(&self, start: usize, end: usize) -> &[Request] {
        let end = end.min(self.requests.len());
        let start = start.min(end);
        &self.requests[start..end]
    }

    /// Splits the trace into consecutive chunks of `window` requests; the
    /// final chunk may be shorter. This mirrors the paper's evaluation,
    /// which splits the trace chronologically into one-million-request
    /// parts, training on part *k* and evaluating on part *k + 1*.
    pub fn chunks(&self, window: usize) -> impl Iterator<Item = &[Request]> {
        self.requests.chunks(window.max(1))
    }

    /// Total bytes across all requests (each request counted).
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.size).sum()
    }

    /// Consumes the trace, returning the underlying vector.
    pub fn into_requests(self) -> Vec<Request> {
        self.requests
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Trace {
            requests: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_models_match_paper_definitions() {
        assert_eq!(CostModel::ByteHitRatio.cost(4096), 4096);
        assert_eq!(CostModel::ObjectHitRatio.cost(4096), 1);
        let lat = CostModel::PerByteLatency {
            fixed: 100,
            per_kib: 2,
        };
        assert_eq!(lat.cost(4096), 100 + 2 * 4);
        assert_eq!(lat.cost(1), 100 + 2); // partial KiB rounds up
    }

    #[test]
    fn window_clamps_bounds() {
        let t: Trace = (0..5).map(|i| Request::new(i, i, 1)).collect();
        assert_eq!(t.window(1, 3).len(), 2);
        assert_eq!(t.window(4, 100).len(), 1);
        assert_eq!(t.window(10, 20).len(), 0);
        assert_eq!(t.window(3, 2).len(), 0);
    }

    #[test]
    fn chunks_cover_whole_trace() {
        let t: Trace = (0..10).map(|i| Request::new(i, i, 1)).collect();
        let sizes: Vec<usize> = t.chunks(4).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(t.chunks(4).map(|c| c.len()).sum::<usize>(), t.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        Trace::from_requests(vec![Request {
            time: 0,
            object: ObjectId(1),
            size: 0,
        }]);
    }

    #[test]
    fn total_bytes_counts_repeats() {
        let t: Trace = vec![Request::new(0, 1u64, 10), Request::new(1, 1u64, 10)]
            .into_iter()
            .collect();
        assert_eq!(t.total_bytes(), 20);
    }
}
