//! LRU stack-distance analysis.
//!
//! The *stack distance* of a request is the number of distinct objects (or
//! bytes) referenced since the previous request to the same object. It
//! fully characterizes LRU: a request hits an LRU cache of capacity `C`
//! iff its byte stack distance is at most `C`, so one pass over the trace
//! yields the exact LRU hit-ratio curve for *every* capacity at once —
//! the workhorse of CDN cache-provisioning studies (footprint descriptors
//! are its time-windowed generalization).
//!
//! Distances are computed with a Fenwick (binary-indexed) tree over the
//! last-access positions, giving `O(n log n)` total instead of the naive
//! `O(n²)`.

use std::collections::HashMap;

use crate::request::{ObjectId, Request};

/// Fenwick tree over request positions; stores byte weights.
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at position `i` (0-based).
    fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum over positions `0..=i`.
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Per-request reuse measurements.
#[derive(Clone, Debug)]
pub struct StackDistances {
    /// Byte stack distance per request (`None` for first-ever requests).
    /// The distance *includes* the requested object's own size, so a
    /// request hits an LRU cache of `C` bytes iff `distance <= C`.
    pub byte_distance: Vec<Option<u64>>,
    /// Object-count stack distance per request (distinct objects touched
    /// since the last access, including this object).
    pub object_distance: Vec<Option<u64>>,
}

/// Computes exact LRU stack distances for a trace in `O(n log n)`.
pub fn stack_distances(requests: &[Request]) -> StackDistances {
    let n = requests.len();
    let mut byte_tree = Fenwick::new(n);
    let mut count_tree = Fenwick::new(n);
    // Object → (position of last access, size counted in the trees).
    let mut last: HashMap<ObjectId, usize> = HashMap::new();
    let mut byte_distance = Vec::with_capacity(n);
    let mut object_distance = Vec::with_capacity(n);

    for (k, r) in requests.iter().enumerate() {
        match last.get(&r.object) {
            Some(&prev) => {
                // Distinct bytes/objects touched strictly after `prev`,
                // plus this object itself.
                let bytes_after = byte_tree.prefix(n - 1) - byte_tree.prefix(prev);
                let objects_after = count_tree.prefix(n - 1) - count_tree.prefix(prev);
                byte_distance.push(Some(bytes_after + r.size));
                object_distance.push(Some(objects_after + 1));
                // Move the object's weight to the current position.
                byte_tree.add(prev, -(r.size as i64));
                count_tree.add(prev, -1);
            }
            None => {
                byte_distance.push(None);
                object_distance.push(None);
            }
        }
        byte_tree.add(k, r.size as i64);
        count_tree.add(k, 1);
        last.insert(r.object, k);
    }

    StackDistances {
        byte_distance,
        object_distance,
    }
}

impl StackDistances {
    /// Exact LRU byte hit ratio at capacity `c` (bytes), derived from the
    /// distances without simulation.
    pub fn lru_bhr(&self, requests: &[Request], c: u64) -> f64 {
        let mut hit_bytes = 0u64;
        let mut total = 0u64;
        for (r, d) in requests.iter().zip(&self.byte_distance) {
            total += r.size;
            if let Some(d) = d {
                if *d <= c {
                    hit_bytes += r.size;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            hit_bytes as f64 / total as f64
        }
    }

    /// Exact LRU object hit ratio at capacity `c` (bytes).
    pub fn lru_ohr(&self, c: u64) -> f64 {
        if self.byte_distance.is_empty() {
            return 0.0;
        }
        let hits = self
            .byte_distance
            .iter()
            .filter(|d| matches!(d, Some(x) if *x <= c))
            .count();
        hits as f64 / self.byte_distance.len() as f64
    }

    /// The full LRU miss-ratio curve at the given capacities.
    pub fn lru_mrc(&self, capacities: &[u64]) -> Vec<(u64, f64)> {
        capacities
            .iter()
            .map(|&c| (c, 1.0 - self.lru_ohr(c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, TraceGenerator};

    fn req(t: u64, id: u64, size: u64) -> Request {
        Request::new(t, id, size)
    }

    #[test]
    fn hand_computed_distances() {
        // a(10) b(20) a(10) c(5) b(20)
        let reqs = vec![
            req(0, 1, 10),
            req(1, 2, 20),
            req(2, 1, 10),
            req(3, 3, 5),
            req(4, 2, 20),
        ];
        let d = stack_distances(&reqs);
        assert_eq!(d.byte_distance[0], None);
        assert_eq!(d.byte_distance[1], None);
        // a again: b (20) touched since + a itself (10) = 30.
        assert_eq!(d.byte_distance[2], Some(30));
        assert_eq!(d.object_distance[2], Some(2));
        assert_eq!(d.byte_distance[3], None);
        // b again: a (10) + c (5) since + b (20) = 35.
        assert_eq!(d.byte_distance[4], Some(35));
        assert_eq!(d.object_distance[4], Some(3));
    }

    #[test]
    fn repeated_access_has_distance_of_own_size() {
        let reqs = vec![req(0, 1, 7), req(1, 1, 7), req(2, 1, 7)];
        let d = stack_distances(&reqs);
        assert_eq!(d.byte_distance[1], Some(7));
        assert_eq!(d.byte_distance[2], Some(7));
        assert_eq!(d.object_distance[2], Some(1));
    }

    #[test]
    fn distances_predict_lru_exactly() {
        // Cross-validate against an actual LRU simulator. The inclusion
        // property ("hit iff byte distance <= C") is exact only when every
        // object fits the cache, so sizes are clamped below the smallest
        // capacity tested.
        use cdn_cache_free_check::*;
        let requests: Vec<Request> = TraceGenerator::new(GeneratorConfig::small(5, 20_000))
            .map(|mut r| {
                r.size = (r.size % 65_536) + 1;
                r
            })
            .collect();
        let d = stack_distances(&requests);
        let total_unique: u64 = crate::stats::TraceStats::from_requests(&requests).unique_bytes;
        for fraction in [0.05f64, 0.2, 0.6] {
            let c = ((total_unique as f64) * fraction) as u64;
            let predicted = d.lru_ohr(c);
            let simulated = simulate_lru_ohr(&requests, c);
            assert!(
                (predicted - simulated).abs() < 1e-9,
                "fraction {fraction}: stack-distance {predicted} vs simulated {simulated}"
            );
        }
    }

    /// A tiny independent LRU simulator (kept inside the test so cdn-trace
    /// does not depend on cdn-cache).
    mod cdn_cache_free_check {
        use super::super::*;
        use std::collections::HashMap;

        pub fn simulate_lru_ohr(requests: &[Request], capacity: u64) -> f64 {
            let mut order: Vec<ObjectId> = Vec::new(); // MRU at end
            let mut sizes: HashMap<ObjectId, u64> = HashMap::new();
            let mut used = 0u64;
            let mut hits = 0usize;
            for r in requests {
                if sizes.contains_key(&r.object) {
                    hits += 1;
                    order.retain(|&o| o != r.object);
                    order.push(r.object);
                    continue;
                }
                if r.size > capacity {
                    continue;
                }
                while used + r.size > capacity {
                    let victim = order.remove(0);
                    used -= sizes.remove(&victim).unwrap();
                }
                order.push(r.object);
                sizes.insert(r.object, r.size);
                used += r.size;
            }
            hits as f64 / requests.len() as f64
        }
    }

    #[test]
    fn mrc_is_monotone_nonincreasing() {
        let trace = TraceGenerator::new(GeneratorConfig::small(6, 10_000)).generate();
        let d = stack_distances(trace.requests());
        let caps: Vec<u64> = (1..=10).map(|i| i * 10 * 1024 * 1024).collect();
        let mrc = d.lru_mrc(&caps);
        for w in mrc.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
    }

    #[test]
    fn empty_trace() {
        let d = stack_distances(&[]);
        assert!(d.byte_distance.is_empty());
        assert_eq!(d.lru_ohr(100), 0.0);
    }
}
