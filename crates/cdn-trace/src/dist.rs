//! Random distributions used by the trace generator.
//!
//! Implemented here rather than pulled from `rand_distr` because these
//! distributions are part of the substrate we reproduce: CDN popularity is
//! classically modeled as Zipf, and CDN object sizes as a lognormal body
//! with a Pareto (power-law) tail.

use rand::Rng;

/// Zipf(α) distribution over ranks `1..=n`.
///
/// Sampling uses rejection-inversion (W. Hörmann & G. Derflinger,
/// "Rejection-inversion to generate variates from monotone discrete
/// distributions", 1996) so construction is O(1) in `n` and sampling is
/// O(1) expected — important because CDN catalogs have millions of objects.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    /// `H(0.5)`, lower end of the inversion domain.
    h_low: f64,
    /// `H(n + 0.5)`, upper end of the inversion domain.
    h_high: f64,
    /// Shortcut acceptance width `1 - H_inv(H(1.5) - 1)`.
    s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `alpha > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `alpha <= 0` or `alpha` is not finite.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "Zipf exponent must be positive and finite"
        );
        let h = |x: f64| Self::h_static(alpha, x);
        let h_low = h(0.5);
        let h_high = h(n as f64 + 0.5);
        let s = 1.0 - Self::h_inv_static(alpha, h(1.5) - 1.0);
        Zipf {
            n,
            alpha,
            h_low,
            h_high,
            s,
        }
    }

    /// `H(x) = (x^(1-α) - 1) / (1-α)`, the antiderivative of `x^(-α)`
    /// (shifted so the α → 1 limit is `ln x`). Strictly increasing.
    fn h_static(alpha: f64, x: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(1.0 - alpha) - 1.0) / (1.0 - alpha)
        }
    }

    fn h(&self, x: f64) -> f64 {
        Self::h_static(self.alpha, x)
    }

    fn h_inv_static(alpha: f64, y: f64) -> f64 {
        if (alpha - 1.0).abs() < 1e-12 {
            y.exp()
        } else {
            (1.0 + y * (1.0 - alpha)).powf(1.0 / (1.0 - alpha))
        }
    }

    fn h_inv(&self, y: f64) -> f64 {
        Self::h_inv_static(self.alpha, y)
    }

    /// Number of ranks in the support.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The Zipf exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Samples a rank in `1..=n` (rank 1 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            let u = self.h_low + rng.gen::<f64>() * (self.h_high - self.h_low);
            let x = self.h_inv(u).clamp(0.5, self.n as f64 + 0.5);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.h(k + 0.5) - k.powf(-self.alpha) {
                return k as u64;
            }
        }
    }
}

/// Lognormal distribution, parameterized by the mean and standard deviation
/// of the underlying normal (`exp(N(mu, sigma))`).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with log-space mean `mu` and std-dev `sigma >= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be >= 0");
        LogNormal { mu, sigma }
    }

    /// Lognormal whose *median* is `median` (log-space mean = ln(median)).
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0);
        Self::new(median.ln(), sigma)
    }

    /// Samples one value via Box–Muller.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Bounded Pareto distribution over `[low, high]` with tail index `alpha`.
///
/// Used for the heavy tail of software-download and video object sizes.
#[derive(Clone, Copy, Debug)]
pub struct BoundedPareto {
    low: f64,
    high: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto on `[low, high]`, `0 < low < high`, `alpha > 0`.
    pub fn new(low: f64, high: f64, alpha: f64) -> Self {
        assert!(low > 0.0 && high > low, "need 0 < low < high");
        assert!(alpha > 0.0, "alpha must be positive");
        BoundedPareto { low, high, alpha }
    }

    /// Samples one value by inverse-CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().clamp(f64::MIN_POSITIVE, 1.0);
        let la = self.low.powf(self.alpha);
        let ha = self.high.powf(self.alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha)
    }
}

/// One standard-normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn zipf_ranks_in_range() {
        let z = Zipf::new(1000, 0.9);
        let mut r = rng(1);
        for _ in 0..10_000 {
            let k = z.sample(&mut r);
            assert!((1..=1000).contains(&k));
        }
    }

    #[test]
    fn zipf_rank_one_most_frequent() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng(2);
        let mut counts = [0u32; 101];
        for _ in 0..200_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_frequency_ratio_tracks_exponent() {
        // For Zipf(1.0), P(rank 1) / P(rank 2) should be about 2.
        let z = Zipf::new(1_000_000, 1.0);
        let mut r = rng(3);
        let (mut c1, mut c2) = (0u32, 0u32);
        for _ in 0..400_000 {
            match z.sample(&mut r) {
                1 => c1 += 1,
                2 => c2 += 1,
                _ => {}
            }
        }
        let ratio = c1 as f64 / c2 as f64;
        assert!((1.7..2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_handles_alpha_near_one() {
        // The alpha == 1 branch is a separate code path (log/exp).
        let z = Zipf::new(500, 1.0);
        let mut r = rng(4);
        for _ in 0..5_000 {
            let k = z.sample(&mut r);
            assert!((1..=500).contains(&k));
        }
    }

    #[test]
    fn zipf_single_element_support() {
        let z = Zipf::new(1, 0.8);
        let mut r = rng(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 1);
        }
    }

    #[test]
    fn lognormal_median_is_respected() {
        let d = LogNormal::with_median(1000.0, 1.5);
        let mut r = rng(6);
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((700.0..1400.0).contains(&median), "median {median}");
    }

    #[test]
    fn lognormal_zero_sigma_is_constant() {
        let d = LogNormal::with_median(42.0, 0.0);
        let mut r = rng(7);
        for _ in 0..100 {
            assert!((d.sample(&mut r) - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let d = BoundedPareto::new(1e3, 1e9, 1.1);
        let mut r = rng(8);
        for _ in 0..50_000 {
            let x = d.sample(&mut r);
            assert!((1e3..=1e9 + 1.0).contains(&x), "out of bounds: {x}");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        // Most mass near `low`, but large values do occur.
        let d = BoundedPareto::new(1e3, 1e9, 0.9);
        let mut r = rng(9);
        let samples: Vec<f64> = (0..100_000).map(|_| d.sample(&mut r)).collect();
        let below_10k = samples.iter().filter(|&&x| x < 1e4).count();
        // P(X > 1e7) ~ 2.5e-4 for these parameters, so expect ~25 of 100K.
        let above_10m = samples.iter().filter(|&&x| x > 1e7).count();
        assert!(below_10k > 50_000, "body too thin: {below_10k}");
        assert!(above_10m >= 5, "tail too thin: {above_10m}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = Zipf::new(10_000, 0.85);
        let a: Vec<u64> = {
            let mut r = rng(42);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(42);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng(10);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
