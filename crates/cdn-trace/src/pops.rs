//! Per-PoP (point-of-presence) trace generation for multi-PoP topologies.
//!
//! A CDN serves "millions of users across geographies" through edge PoPs,
//! and each PoP sees its own slice of the catalog: the same library of
//! objects, but with region-local popularity (the hot head differs per
//! region), a region-private tail (content only one PoP's users request),
//! and load-balancer events that migrate whole user populations — and
//! therefore popularity — between PoPs.
//!
//! [`PopTraceGenerator`] models exactly that on top of the single-stream
//! [`TraceGenerator`]: each PoP runs its own deterministic inner stream
//! over the *same* catalog definition, and three per-PoP transforms are
//! applied on the way out:
//!
//! - **PoP-local popularity skew** (`skew`): each PoP's catalog indexes
//!   are rotated by a PoP-specific offset, so the Zipf head lands on a
//!   different set of objects per PoP. `skew = 0` is the identity.
//! - **Catalog overlap** (`overlap`): a deterministic per-object hash
//!   marks `1 − overlap` of each PoP's catalog as region-private; private
//!   objects are aliased into a reserved per-PoP id namespace so they can
//!   never hit in another PoP's cache (or dedupe at a shared regional
//!   tier). `overlap = 1` is the identity.
//! - **Popularity migrations** (`migrations`): at a scheduled request
//!   index the PoP→skew-offset assignment rotates, so one PoP's hot set
//!   becomes another's — users redirected between PoPs. Unlike the base
//!   generator's [`crate::Reshuffle`], a migration mints **no fresh
//!   objects**: it permutes existing assignments, conserving the catalog.
//!
//! **Determinism and the degenerate contract.** The generator draws no
//! RNG of its own: skew offsets and private/shared decisions are pure
//! functions of ids, and multi-PoP object sizes come from per-id seeded
//! streams. A benign single-PoP configuration ([`PopTraceConfig::single`])
//! applies only identity transforms and emits the inner generator's
//! stream bit for bit — the new layer provably changes nothing when
//! unused (`single_pop_benign_config_is_bit_identical` pins this down).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::generator::{GeneratorConfig, TraceGenerator, ADVERSARY_BIT, CLASS_SHIFT};
use crate::request::{ObjectId, Request};

/// Bit position of the per-PoP private-object namespace. Catalog ids use
/// the class index at [`CLASS_SHIFT`] (a handful of classes) and
/// sub-`CLASS_SHIFT` object indexes; adversary ids own bit 63. Bits
/// 56..=62 are free, so `pop + 1 ≤ MAX_POPS` can never collide with
/// either.
const POP_SHIFT: u32 = 56;

/// Most PoPs a [`PopTraceConfig`] may declare: `MAX_POPS + 1` must fit in
/// the seven bits below the adversary bit.
pub const MAX_POPS: usize = 64;

/// The repo's standard 64-bit mixer (same constants as `lfo::features`).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform value in `[0, 1)` derived from a hash — the deterministic
/// per-object coin behind the overlap split.
fn unit_frac(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// A scheduled popularity migration: at global request index `at`, the
/// PoP→skew-offset assignment rotates left by `rotate` slots, so each
/// PoP inherits the hot set another PoP was serving — a load balancer
/// redirecting user populations between PoPs. Conserves the catalog:
/// no object is minted or retired, only the assignment permutes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PopMigration {
    /// Global (merged-stream) request index at which the migration fires.
    pub at: u64,
    /// Slots to rotate the PoP→offset assignment by (mod the PoP count).
    pub rotate: usize,
}

/// Configuration of [`PopTraceGenerator`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopTraceConfig {
    /// The per-PoP inner stream template: catalog, mix, churn, and
    /// scheduled events. PoP 0 uses `base.seed` verbatim (the degenerate
    /// single-PoP stream is bit-identical to [`TraceGenerator`]); PoP
    /// `p > 0` derives its seed from `base.seed` and `p`.
    pub base: GeneratorConfig,
    /// Number of edge PoPs (1..=[`MAX_POPS`]). Each contributes
    /// `base.num_requests` requests to the merged round-robin stream.
    pub num_pops: usize,
    /// Fraction of each PoP's catalog shared across PoPs, in `[0, 1]`.
    /// The remaining `1 − overlap` is region-private: aliased into the
    /// PoP's reserved namespace, invisible to every other PoP.
    pub overlap: f64,
    /// PoP-local popularity skew in `[0, 1]`: PoP slot `s` rotates its
    /// catalog indexes by `⌊s × skew × catalog⌋`, landing the Zipf head
    /// on a different region of the catalog per PoP. `0` disables skew
    /// (every PoP shares one hot set).
    pub skew: f64,
    /// Scheduled popularity migrations between PoPs.
    pub migrations: Vec<PopMigration>,
}

impl PopTraceConfig {
    /// The benign degenerate configuration: one PoP, full overlap, no
    /// skew, no migrations. Emits `base`'s stream bit for bit.
    pub fn single(base: GeneratorConfig) -> Self {
        PopTraceConfig {
            base,
            num_pops: 1,
            overlap: 1.0,
            skew: 0.0,
            migrations: Vec::new(),
        }
    }

    /// A production-like multi-PoP mix: `num_pops` PoPs over the standard
    /// production catalog, 70% shared catalog, hot heads spread a quarter
    /// of the catalog apart.
    pub fn production(seed: u64, num_pops: usize, requests_per_pop: u64) -> Self {
        PopTraceConfig {
            base: GeneratorConfig::production(seed, requests_per_pop),
            num_pops,
            overlap: 0.7,
            skew: 0.25,
            migrations: Vec::new(),
        }
    }
}

/// One request of the merged multi-PoP stream: which edge PoP it arrived
/// at, plus the request itself (`request.time` is the global merged-stream
/// index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PopRequest {
    /// Index of the PoP the request arrived at.
    pub pop: usize,
    /// The request, timestamped in the merged stream.
    pub request: Request,
}

/// Deterministic multi-PoP trace generator; see the module docs.
///
/// Implements [`Iterator`] over [`PopRequest`]s: PoPs are interleaved
/// round-robin (equal traffic per PoP), `num_pops × base.num_requests`
/// requests in total.
pub struct PopTraceGenerator {
    config: PopTraceConfig,
    /// One inner stream per PoP (PoP 0 on the base seed verbatim).
    inner: Vec<TraceGenerator>,
    /// PoP → skew-slot assignment; starts as the identity and is permuted
    /// by migrations.
    rot: Vec<usize>,
    /// Fleet-wide object sizes (multi-PoP only): the same object must have
    /// one size no matter which PoP's stream it surfaces in, so sizes are
    /// re-drawn from a per-id seeded stream instead of each inner
    /// generator's private RNG.
    sizes: HashMap<ObjectId, u64>,
    /// Salt of the shared/private overlap coin.
    overlap_salt: u64,
    /// Salt of the fleet-wide size stream.
    size_salt: u64,
    /// Next global (merged-stream) request index.
    next: u64,
    /// Total requests across all PoPs.
    total: u64,
}

impl PopTraceGenerator {
    /// Creates a generator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_pops` is outside `1..=MAX_POPS` or a fraction lies
    /// outside `[0, 1]`.
    pub fn new(config: PopTraceConfig) -> Self {
        assert!(
            (1..=MAX_POPS).contains(&config.num_pops),
            "num_pops must be in 1..={MAX_POPS}"
        );
        assert!((0.0..=1.0).contains(&config.overlap), "overlap fraction");
        assert!((0.0..=1.0).contains(&config.skew), "skew fraction");
        let inner = (0..config.num_pops)
            .map(|p| {
                let mut base = config.base.clone();
                // PoP 0 keeps the configured seed so the 1-PoP degenerate
                // stream is the base generator's, bit for bit.
                if p > 0 {
                    base.seed ^= splitmix64(p as u64);
                }
                TraceGenerator::new(base)
            })
            .collect();
        let total = config.num_pops as u64 * config.base.num_requests;
        PopTraceGenerator {
            rot: (0..config.num_pops).collect(),
            inner,
            sizes: HashMap::new(),
            overlap_salt: splitmix64(config.base.seed ^ 0x706f_7073_6f76_6c70), // "popsovlp"
            size_salt: splitmix64(config.base.seed ^ 0x706f_7073_7369_7a65),    // "popssize"
            next: 0,
            total,
            config,
        }
    }

    /// The configuration this generator was built with.
    pub fn config(&self) -> &PopTraceConfig {
        &self.config
    }

    /// Materializes the full merged stream.
    pub fn generate(self) -> Vec<PopRequest> {
        self.collect()
    }

    /// Catalog-index rotation for a skew slot over an `n`-object class.
    fn offset_for(&self, slot: usize, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        ((slot as f64 * self.config.skew * n as f64) as u64) % n
    }

    /// Fleet-wide stable size for an object: drawn once from a per-id
    /// seeded stream, so the draw is independent of which PoP (and in
    /// which order) first requests the object.
    fn shared_size(&mut self, class: usize, id: ObjectId) -> u64 {
        if let Some(&s) = self.sizes.get(&id) {
            return s;
        }
        let mut rng = StdRng::seed_from_u64(splitmix64(self.size_salt ^ id.0));
        let s = self.config.base.mix.classes()[class]
            .sizes
            .sample(&mut rng)
            .max(1);
        self.sizes.insert(id, s);
        s
    }

    /// Applies the per-PoP transforms to one inner request. Every branch
    /// is the identity under the benign single-PoP configuration.
    fn localize(&mut self, pop: usize, inner: Request, t: u64) -> Request {
        let mut id = inner.object;
        let mut size = inner.size;
        if id.0 & ADVERSARY_BIT == 0 {
            let class = (id.0 >> CLASS_SHIFT) as usize;
            let index = id.0 & ((1u64 << CLASS_SHIFT) - 1);
            let n = self.config.base.mix.classes()[class].num_objects;
            // PoP-local popularity skew: rotate catalog indexes by this
            // PoP's current slot. Fresh objects (reshuffles, flash crowds;
            // index ≥ n) are event-local and stay un-rotated.
            if index < n {
                let rotated = (index + self.offset_for(self.rot[pop], n)) % n;
                id = ObjectId(((class as u64) << CLASS_SHIFT) | rotated);
            }
            // Catalog overlap: a deterministic per-object coin marks the
            // region-private fraction; private objects live in the PoP's
            // reserved namespace.
            if self.config.overlap < 1.0
                && unit_frac(splitmix64(self.overlap_salt ^ id.0)) >= self.config.overlap
            {
                id = ObjectId(id.0 | ((pop as u64 + 1) << POP_SHIFT));
            }
            // One size per object across the whole fleet. A single PoP
            // needs no fleet-wide agreement, so the degenerate case keeps
            // the inner stream's draws untouched (bit-identity).
            if self.config.num_pops > 1 {
                size = self.shared_size(class, id);
            }
        }
        Request {
            time: t,
            object: id,
            size,
        }
    }

    fn step(&mut self) -> PopRequest {
        let t = self.next;
        self.next += 1;
        for i in 0..self.config.migrations.len() {
            let m = self.config.migrations[i];
            if m.at == t {
                self.rot.rotate_left(m.rotate % self.config.num_pops);
            }
        }
        let pop = (t % self.config.num_pops as u64) as usize;
        let inner = self.inner[pop]
            .next()
            .expect("inner streams cover the merged length");
        let request = self.localize(pop, inner, t);
        PopRequest { pop, request }
    }
}

impl Iterator for PopTraceGenerator {
    type Item = PopRequest;

    fn next(&mut self) -> Option<PopRequest> {
        if self.next >= self.total {
            return None;
        }
        Some(self.step())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.total - self.next) as usize;
        (remaining, Some(remaining))
    }
}

/// Splits a merged multi-PoP stream into per-PoP request vectors (the
/// per-PoP training windows feed on these; the merged stream is what a
/// topology replays).
pub fn split_by_pop(stream: &[PopRequest], num_pops: usize) -> Vec<Vec<Request>> {
    let mut per_pop = vec![Vec::new(); num_pops];
    for pr in stream {
        per_pop[pr.pop].push(pr.request);
    }
    per_pop
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hottest object of `window` (by request count).
    fn hottest(window: &[PopRequest]) -> ObjectId {
        let mut counts: HashMap<ObjectId, usize> = HashMap::new();
        for pr in window {
            *counts.entry(pr.request.object).or_default() += 1;
        }
        *counts.iter().max_by_key(|(_, n)| **n).unwrap().0
    }

    #[test]
    fn deterministic_across_runs() {
        let mut config = PopTraceConfig::production(31, 3, 4_000);
        config.migrations = vec![PopMigration {
            at: 6_000,
            rotate: 1,
        }];
        let a = PopTraceGenerator::new(config.clone()).generate();
        let b = PopTraceGenerator::new(config).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn single_pop_benign_config_is_bit_identical() {
        // The per-PoP layer must add zero behavior when unused: one PoP,
        // full overlap, no skew, no migrations reproduces the base
        // generator's stream request for request.
        let base = GeneratorConfig::small(7, 5_000);
        let expected = TraceGenerator::new(base.clone()).generate();
        let merged = PopTraceGenerator::new(PopTraceConfig::single(base)).generate();
        assert_eq!(merged.len(), expected.len());
        for (pr, r) in merged.iter().zip(expected.iter()) {
            assert_eq!(pr.pop, 0);
            assert_eq!(&pr.request, r);
        }
    }

    #[test]
    fn round_robin_interleave_with_global_times() {
        let config = PopTraceConfig::production(9, 4, 1_000);
        let merged = PopTraceGenerator::new(config).generate();
        assert_eq!(merged.len(), 4_000);
        for (i, pr) in merged.iter().enumerate() {
            assert_eq!(pr.pop, i % 4);
            assert_eq!(pr.request.time, i as u64);
            assert!(pr.request.size > 0);
        }
    }

    #[test]
    fn skew_separates_the_hot_heads_per_pop() {
        let mut config = PopTraceConfig::production(11, 2, 10_000);
        config.overlap = 1.0; // isolate the skew transform
        config.skew = 0.5;
        config.base.churn_interval = 0;
        let merged = PopTraceGenerator::new(config).generate();
        let per_pop = split_by_pop(&merged, 2);
        let hot: Vec<ObjectId> = (0..2)
            .map(|p| {
                let stream: Vec<PopRequest> =
                    merged.iter().filter(|pr| pr.pop == p).copied().collect();
                hottest(&stream)
            })
            .collect();
        assert_ne!(hot[0], hot[1], "skewed PoPs must have distinct hot heads");
        assert_eq!(per_pop[0].len(), per_pop[1].len());
    }

    #[test]
    fn overlap_creates_disjoint_private_namespaces() {
        let mut config = PopTraceConfig::production(13, 3, 8_000);
        config.overlap = 0.5;
        let merged = PopTraceGenerator::new(config).generate();
        let mut private: Vec<std::collections::HashSet<ObjectId>> =
            vec![std::collections::HashSet::new(); 3];
        let mut shared = std::collections::HashSet::new();
        for pr in &merged {
            let tag = pr.request.object.0 >> POP_SHIFT;
            if tag == 0 {
                shared.insert(pr.request.object);
            } else {
                assert_eq!(tag as usize, pr.pop + 1, "private tag must match the PoP");
                private[pr.pop].insert(pr.request.object);
            }
        }
        assert!(!shared.is_empty(), "half the catalog stays shared");
        for p in 0..3 {
            assert!(!private[p].is_empty(), "PoP {p} has a private tail");
            for q in 0..3 {
                if p != q {
                    assert!(private[p].is_disjoint(&private[q]));
                }
            }
        }
        let distinct_private: usize = private.iter().map(|s| s.len()).sum();
        let frac = distinct_private as f64 / (distinct_private + shared.len()) as f64;
        assert!(
            (0.2..=0.9).contains(&frac),
            "private fraction {frac:.2} implausible for overlap 0.5"
        );
    }

    #[test]
    fn object_sizes_agree_across_pops() {
        let config = PopTraceConfig::production(17, 4, 6_000);
        let merged = PopTraceGenerator::new(config).generate();
        let mut seen: HashMap<ObjectId, u64> = HashMap::new();
        let mut cross_pop_objects = 0usize;
        let mut pops_of: HashMap<ObjectId, std::collections::HashSet<usize>> = HashMap::new();
        for pr in &merged {
            if let Some(&s) = seen.get(&pr.request.object) {
                assert_eq!(
                    s, pr.request.size,
                    "object {:?} changed size",
                    pr.request.object
                );
            } else {
                seen.insert(pr.request.object, pr.request.size);
            }
            let pops = pops_of.entry(pr.request.object).or_default();
            pops.insert(pr.pop);
            if pops.len() == 2 {
                cross_pop_objects += 1;
            }
        }
        assert!(
            cross_pop_objects > 100,
            "shared catalog must surface in multiple PoPs ({cross_pop_objects})"
        );
    }

    #[test]
    fn migration_moves_the_hot_set_between_pops_and_conserves_the_catalog() {
        // Two PoPs, half-catalog skew, churn off, no reshuffles: PoP 0
        // serves the un-rotated head, PoP 1 the half-rotated one. The
        // migration swaps the assignment, so PoP 1 inherits PoP 0's hot
        // set — and no object outside the original catalogs ever appears
        // (the base Reshuffle mints fresh objects; a migration must not).
        let mut config = PopTraceConfig::production(19, 2, 12_000);
        config.overlap = 1.0;
        config.skew = 0.5;
        config.base.churn_interval = 0;
        let mid = 12_000; // global index: half of the 24k merged stream
        config.migrations = vec![PopMigration { at: mid, rotate: 1 }];
        let classes: Vec<u64> = config
            .base
            .mix
            .classes()
            .iter()
            .map(|c| c.num_objects)
            .collect();
        let merged = PopTraceGenerator::new(config).generate();

        // Catalog conservation: every id decodes to an in-catalog index.
        for pr in &merged {
            let class = (pr.request.object.0 >> CLASS_SHIFT) as usize;
            let index = pr.request.object.0 & ((1u64 << CLASS_SHIFT) - 1);
            assert!(
                index < classes[class],
                "migration minted a fresh object: class {class}, index {index}"
            );
        }

        let window = |pop: usize, from: u64, to: u64| -> Vec<PopRequest> {
            merged
                .iter()
                .filter(|pr| pr.pop == pop && (from..to).contains(&pr.request.time))
                .copied()
                .collect()
        };
        let pop0_before = hottest(&window(0, 0, mid));
        let pop1_before = hottest(&window(1, 0, mid));
        let pop0_after = hottest(&window(0, mid, 24_000));
        let pop1_after = hottest(&window(1, mid, 24_000));
        assert_ne!(pop0_before, pop1_before, "skew separates the heads");
        assert_eq!(
            pop1_after, pop0_before,
            "PoP 1 must inherit PoP 0's hot set after the migration"
        );
        assert_eq!(
            pop0_after, pop1_before,
            "PoP 0 must inherit PoP 1's hot set after the migration"
        );
    }

    #[test]
    fn split_by_pop_partitions_the_stream() {
        let config = PopTraceConfig::production(23, 3, 2_000);
        let merged = PopTraceGenerator::new(config).generate();
        let per_pop = split_by_pop(&merged, 3);
        assert_eq!(per_pop.iter().map(Vec::len).sum::<usize>(), merged.len());
        for stream in &per_pop {
            assert_eq!(stream.len(), 2_000);
            for pair in stream.windows(2) {
                assert!(pair[0].time < pair[1].time, "times stay ordered");
            }
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut g = PopTraceGenerator::new(PopTraceConfig::production(3, 2, 50));
        assert_eq!(g.size_hint(), (100, Some(100)));
        g.next();
        assert_eq!(g.size_hint(), (99, Some(99)));
    }
}
