//! The paper's Figure 3 worked example.
//!
//! "Example trace of requests to four objects": objects a, b, c, d with
//! sizes 3, 1, 1, 2, requested in the order `a b c b d a c d a b b a`.
//! The `opt` crate's tests and the `fig4` reproduction target build the
//! Figure 4 min-cost flow graph from exactly this trace.

use crate::request::{ObjectId, Request, Trace};

/// Object `a` (size 3).
pub const A: ObjectId = ObjectId(1);
/// Object `b` (size 1).
pub const B: ObjectId = ObjectId(2);
/// Object `c` (size 1).
pub const C: ObjectId = ObjectId(3);
/// Object `d` (size 2).
pub const D: ObjectId = ObjectId(4);

/// The request order of Figure 3: `a b c b d a c d a b b a`.
pub const ORDER: [(ObjectId, u64); 12] = [
    (A, 3),
    (B, 1),
    (C, 1),
    (B, 1),
    (D, 2),
    (A, 3),
    (C, 1),
    (D, 2),
    (A, 3),
    (B, 1),
    (B, 1),
    (A, 3),
];

/// Builds the Figure 3 trace.
pub fn figure3_trace() -> Trace {
    ORDER
        .iter()
        .enumerate()
        .map(|(i, &(object, size))| Request {
            time: i as u64,
            object,
            size,
        })
        .collect()
}

/// The cache capacity used in the Figure 4 illustration (central edges are
/// drawn with capacity 3).
pub const FIGURE4_CACHE_SIZE: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_matches_figure3() {
        let t = figure3_trace();
        assert_eq!(t.len(), 12);
        let objs: Vec<ObjectId> = t.iter().map(|r| r.object).collect();
        assert_eq!(
            objs,
            vec![A, B, C, B, D, A, C, D, A, B, B, A],
            "request order must be a b c b d a c d a b b a"
        );
        // Sizes are 3, 1, 1, 2 for a, b, c, d.
        for r in &t {
            let expected = match r.object {
                x if x == A => 3,
                x if x == B => 1,
                x if x == C => 1,
                _ => 2,
            };
            assert_eq!(r.size, expected);
        }
    }

    #[test]
    fn first_and_last_requests_per_object() {
        let t = figure3_trace();
        let first = |o: ObjectId| t.iter().position(|r| r.object == o).unwrap();
        let last = |o: ObjectId| t.iter().rposition(|r| r.object == o).unwrap();
        // Matches the +size / -size annotations in Figure 4.
        assert_eq!((first(A), last(A)), (0, 11));
        assert_eq!((first(B), last(B)), (1, 10));
        assert_eq!((first(C), last(C)), (2, 6));
        assert_eq!((first(D), last(D)), (4, 7));
    }
}
