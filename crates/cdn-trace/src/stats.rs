//! Trace statistics.
//!
//! Used to validate that synthetic traces have the statistical shape of
//! production CDN traffic (heavy-tailed popularity, one-hit wonders, highly
//! variable sizes) and to size caches relative to a trace's footprint —
//! the paper uses a 256 GB cache against a week-long trace; we express
//! cache sizes as a fraction of unique bytes instead.

use std::collections::HashMap;

use crate::request::{ObjectId, Request, Trace};

/// Aggregate statistics of a request trace.
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Total number of requests.
    pub requests: u64,
    /// Number of distinct objects.
    pub unique_objects: u64,
    /// Sum of sizes over all requests.
    pub total_bytes: u64,
    /// Sum of sizes over distinct objects (the trace footprint).
    pub unique_bytes: u64,
    /// Fraction of objects requested exactly once ("one-hit wonders").
    pub one_hit_wonder_ratio: f64,
    /// Mean object size over distinct objects, in bytes.
    pub mean_object_size: f64,
    /// Request counts per object, descending (the popularity curve).
    popularity: Vec<u64>,
}

impl TraceStats {
    /// Computes statistics for a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_requests(trace.requests())
    }

    /// Computes statistics for a window of requests.
    pub fn from_requests(requests: &[Request]) -> Self {
        let mut counts: HashMap<ObjectId, u64> = HashMap::new();
        let mut sizes: HashMap<ObjectId, u64> = HashMap::new();
        let mut total_bytes = 0u64;
        for r in requests {
            *counts.entry(r.object).or_insert(0) += 1;
            sizes.entry(r.object).or_insert(r.size);
            total_bytes += r.size;
        }
        let unique_objects = counts.len() as u64;
        let unique_bytes: u64 = sizes.values().sum();
        let one_hit = counts.values().filter(|&&c| c == 1).count() as u64;
        let mut popularity: Vec<u64> = counts.into_values().collect();
        popularity.sort_unstable_by(|a, b| b.cmp(a));
        TraceStats {
            requests: requests.len() as u64,
            unique_objects,
            total_bytes,
            unique_bytes,
            one_hit_wonder_ratio: if unique_objects == 0 {
                0.0
            } else {
                one_hit as f64 / unique_objects as f64
            },
            mean_object_size: if unique_objects == 0 {
                0.0
            } else {
                unique_bytes as f64 / unique_objects as f64
            },
            popularity,
        }
    }

    /// Fraction of all requests absorbed by the most popular `fraction` of
    /// objects (e.g. `top_fraction_share(0.01)` = share of the top 1%).
    pub fn top_fraction_share(&self, fraction: f64) -> f64 {
        if self.requests == 0 || self.popularity.is_empty() {
            return 0.0;
        }
        let k = ((self.popularity.len() as f64 * fraction).ceil() as usize)
            .clamp(1, self.popularity.len());
        let top: u64 = self.popularity[..k].iter().sum();
        top as f64 / self.requests as f64
    }

    /// Estimates the Zipf exponent by least-squares on log(rank)/log(count)
    /// over the top `k` ranks.
    pub fn zipf_slope(&self, k: usize) -> f64 {
        let k = k.min(self.popularity.len());
        if k < 2 {
            return 0.0;
        }
        let points: Vec<(f64, f64)> = self.popularity[..k]
            .iter()
            .enumerate()
            .map(|(i, &c)| (((i + 1) as f64).ln(), (c.max(1) as f64).ln()))
            .collect();
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return 0.0;
        }
        // The popularity curve slope is -alpha.
        -((n * sxy - sx * sy) / denom)
    }

    /// The popularity curve: request counts per object, descending.
    pub fn popularity(&self) -> &[u64] {
        &self.popularity
    }

    /// A cache size corresponding to `fraction` of the trace's unique bytes.
    pub fn cache_size_for_fraction(&self, fraction: f64) -> u64 {
        ((self.unique_bytes as f64) * fraction).ceil() as u64
    }
}

/// Cumulative footprint curve: unique bytes seen after each request.
///
/// Useful to pick cache sizes that are meaningful for a window: a cache
/// larger than the window's footprint makes every policy identical.
pub fn footprint_curve(requests: &[Request]) -> Vec<u64> {
    let mut seen: HashMap<ObjectId, ()> = HashMap::new();
    let mut acc = 0u64;
    let mut curve = Vec::with_capacity(requests.len());
    for r in requests {
        if seen.insert(r.object, ()).is_none() {
            acc += r.size;
        }
        curve.push(acc);
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(reqs: &[(u64, u64)]) -> Trace {
        reqs.iter()
            .enumerate()
            .map(|(i, &(id, size))| Request::new(i as u64, id, size))
            .collect()
    }

    #[test]
    fn basic_counters() {
        let t = trace(&[(1, 10), (2, 20), (1, 10), (3, 5)]);
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.requests, 4);
        assert_eq!(s.unique_objects, 3);
        assert_eq!(s.total_bytes, 45);
        assert_eq!(s.unique_bytes, 35);
        assert!((s.one_hit_wonder_ratio - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.mean_object_size - 35.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn popularity_sorted_descending() {
        let t = trace(&[(1, 1), (1, 1), (1, 1), (2, 1), (2, 1), (3, 1)]);
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.popularity(), &[3, 2, 1]);
    }

    #[test]
    fn top_fraction_share_of_skewed_trace() {
        let t = trace(
            &[(1, 1); 99]
                .iter()
                .chain(&[(2, 1)])
                .copied()
                .collect::<Vec<_>>(),
        );
        let s = TraceStats::from_trace(&t);
        // Top 50% of objects (= 1 of 2 objects) takes 99% of requests.
        assert!((s.top_fraction_share(0.5) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn zipf_slope_recovers_exponent() {
        // Construct exact Zipf(1.0)-shaped counts: count(rank) = 1000 / rank.
        let mut reqs = Vec::new();
        for rank in 1u64..=50 {
            for _ in 0..(1000 / rank) {
                reqs.push((rank, 1u64));
            }
        }
        let t = trace(&reqs);
        let s = TraceStats::from_trace(&t);
        let slope = s.zipf_slope(50);
        assert!((0.9..1.1).contains(&slope), "slope {slope}");
    }

    #[test]
    fn footprint_curve_is_monotone_and_correct() {
        let t = trace(&[(1, 10), (2, 20), (1, 10), (3, 5)]);
        let c = footprint_curve(t.requests());
        assert_eq!(c, vec![10, 30, 30, 35]);
    }

    #[test]
    fn empty_trace_is_all_zeroes() {
        let s = TraceStats::from_trace(&Trace::new());
        assert_eq!(s.requests, 0);
        assert_eq!(s.top_fraction_share(0.5), 0.0);
        assert_eq!(s.zipf_slope(10), 0.0);
    }

    #[test]
    fn cache_size_fraction() {
        let t = trace(&[(1, 100), (2, 100)]);
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.cache_size_for_fraction(0.25), 50);
        assert_eq!(s.cache_size_for_fraction(1.0), 200);
    }
}
