//! Content classes of the synthetic CDN traffic mix.
//!
//! The paper's introduction motivates the difficulty of CDN caching with the
//! diversity of content served: "web, social, and ecommerce sites, software
//! downloads, and video streaming. Each type of content has unique demands
//! [...] e.g., iOS software downloads are large in size with popularity
//! spikes on iOS update days, whereas Facebook photos are small with a long
//! tail of infrequently requested photos." These classes encode exactly
//! those shapes.

use serde::{Deserialize, Serialize};

use crate::dist::{BoundedPareto, LogNormal};
use rand::Rng;

/// How object sizes of a class are drawn.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum SizeDistribution {
    /// Lognormal body (typical for web pages and photos).
    LogNormal {
        /// Median size in bytes.
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
    },
    /// Bounded Pareto (heavy tail; software downloads, video segments).
    BoundedPareto {
        /// Smallest size in bytes.
        low: f64,
        /// Largest size in bytes.
        high: f64,
        /// Tail index (smaller = heavier tail).
        alpha: f64,
    },
    /// All objects the same size (useful for unit-size validation traces).
    Fixed {
        /// The object size in bytes.
        size: u64,
    },
}

impl SizeDistribution {
    /// Draws one object size in bytes (at least 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            SizeDistribution::LogNormal { median, sigma } => {
                (LogNormal::with_median(median, sigma).sample(rng) as u64).max(1)
            }
            SizeDistribution::BoundedPareto { low, high, alpha } => {
                (BoundedPareto::new(low, high, alpha).sample(rng) as u64).max(1)
            }
            SizeDistribution::Fixed { size } => size.max(1),
        }
    }
}

/// One class of content (photos, video, downloads, ...) within the mix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContentClass {
    /// Human-readable label (appears in stats output).
    pub name: String,
    /// Relative share of requests that hit this class.
    pub weight: f64,
    /// Number of distinct objects in the class catalog.
    pub num_objects: u64,
    /// Zipf popularity exponent within the class.
    pub zipf_alpha: f64,
    /// Size distribution of the class's objects.
    pub sizes: SizeDistribution,
}

impl ContentClass {
    /// Small, hot web/HTML/CSS/JS objects.
    pub fn web(num_objects: u64) -> Self {
        ContentClass {
            name: "web".into(),
            weight: 0.3,
            num_objects,
            zipf_alpha: 0.95,
            sizes: SizeDistribution::LogNormal {
                median: 12.0 * 1024.0,
                sigma: 1.2,
            },
        }
    }

    /// Small photos with a very long tail of rarely-requested objects
    /// (the paper's "Facebook photos" example).
    pub fn photo(num_objects: u64) -> Self {
        ContentClass {
            name: "photo".into(),
            weight: 0.4,
            num_objects,
            zipf_alpha: 0.75,
            sizes: SizeDistribution::LogNormal {
                median: 48.0 * 1024.0,
                sigma: 0.9,
            },
        }
    }

    /// Video segments: mid-size, moderately skewed popularity.
    pub fn video(num_objects: u64) -> Self {
        ContentClass {
            name: "video".into(),
            weight: 0.2,
            num_objects,
            zipf_alpha: 1.05,
            sizes: SizeDistribution::BoundedPareto {
                low: 256.0 * 1024.0,
                high: 16.0 * 1024.0 * 1024.0,
                alpha: 1.3,
            },
        }
    }

    /// Software downloads: very large objects, strongly skewed popularity
    /// (the paper's "iOS update day" example).
    pub fn download(num_objects: u64) -> Self {
        ContentClass {
            name: "download".into(),
            weight: 0.1,
            num_objects,
            zipf_alpha: 1.3,
            sizes: SizeDistribution::BoundedPareto {
                low: 4.0 * 1024.0 * 1024.0,
                high: 2.0 * 1024.0 * 1024.0 * 1024.0,
                alpha: 1.1,
            },
        }
    }
}

/// A weighted mixture of content classes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContentMix {
    classes: Vec<ContentClass>,
}

impl ContentMix {
    /// Builds a mix from classes; weights are normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or total weight is not positive.
    pub fn new(classes: Vec<ContentClass>) -> Self {
        assert!(!classes.is_empty(), "mix needs at least one class");
        let total: f64 = classes.iter().map(|c| c.weight).sum();
        assert!(total > 0.0, "total class weight must be positive");
        ContentMix { classes }
    }

    /// The default production-like mix from the paper's motivation:
    /// 30% web, 40% photo, 20% video, 10% software downloads.
    ///
    /// `scale` multiplies every class's catalog size; `scale = 1` gives a
    /// catalog of ~175K objects suitable for window-sized experiments.
    pub fn production(scale: f64) -> Self {
        assert!(scale > 0.0);
        let s = |n: u64| ((n as f64 * scale) as u64).max(1);
        ContentMix::new(vec![
            ContentClass::web(s(40_000)),
            ContentClass::photo(s(120_000)),
            ContentClass::video(s(12_000)),
            ContentClass::download(s(3_000)),
        ])
    }

    /// Access the classes.
    pub fn classes(&self) -> &[ContentClass] {
        &self.classes
    }

    /// Picks a class index according to the weights.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut x = rng.gen::<f64>() * total;
        for (i, c) in self.classes.iter().enumerate() {
            x -= c.weight;
            if x <= 0.0 {
                return i;
            }
        }
        self.classes.len() - 1
    }

    /// Total number of distinct objects across all classes.
    pub fn catalog_size(&self) -> u64 {
        self.classes.iter().map(|c| c.num_objects).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn production_mix_has_four_classes() {
        let mix = ContentMix::production(1.0);
        assert_eq!(mix.classes().len(), 4);
        assert_eq!(mix.catalog_size(), 175_000);
    }

    #[test]
    fn pick_respects_weights() {
        let mix = ContentMix::new(vec![
            ContentClass {
                name: "a".into(),
                weight: 0.9,
                num_objects: 10,
                zipf_alpha: 1.0,
                sizes: SizeDistribution::Fixed { size: 1 },
            },
            ContentClass {
                name: "b".into(),
                weight: 0.1,
                num_objects: 10,
                zipf_alpha: 1.0,
                sizes: SizeDistribution::Fixed { size: 1 },
            },
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        let picks_a = (0..10_000).filter(|_| mix.pick(&mut rng) == 0).count();
        assert!((8500..9500).contains(&picks_a), "picks_a = {picks_a}");
    }

    #[test]
    fn size_distributions_are_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for dist in [
            SizeDistribution::LogNormal {
                median: 1000.0,
                sigma: 2.0,
            },
            SizeDistribution::BoundedPareto {
                low: 10.0,
                high: 1e9,
                alpha: 0.5,
            },
            SizeDistribution::Fixed { size: 0 },
        ] {
            for _ in 0..1000 {
                assert!(dist.sample(&mut rng) >= 1);
            }
        }
    }

    #[test]
    fn scaling_shrinks_catalog() {
        let small = ContentMix::production(0.01);
        assert!(small.catalog_size() < 2_000);
        assert!(small.catalog_size() >= 4); // every class keeps >= 1 object
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_rejected() {
        ContentMix::new(vec![]);
    }
}
