//! Trace serialization.
//!
//! Two formats:
//!
//! - **Text** — the `webcachesim` format used by the paper's public code
//!   release (github.com/dasebe/webcachesim): one request per line,
//!   whitespace-separated `time object_id size`. Interoperable with the
//!   traces that the LRB/webcachesim research line publishes.
//! - **Binary** — three little-endian `u64`s per request, for fast loading
//!   of multi-million-request traces.

use std::io::{self, BufRead, Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::request::{ObjectId, Request, Trace};

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying reader/writer failure.
    Io(io::Error),
    /// A malformed line or truncated record, with 1-based position.
    Parse {
        /// Line (text) or record (binary) number.
        position: usize,
        /// Problem description.
        message: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Parse { position, message } => {
                write!(f, "parse error at record {position}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Longest accepted text line, in bytes. Three decimal `u64`s plus
/// whitespace fit in well under 100 bytes; anything past this is a
/// runaway/corrupt line and is rejected (or skipped in lenient mode)
/// *without* buffering it into memory.
pub const MAX_LINE_BYTES: usize = 4096;

/// Options for trace reading.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadOptions {
    /// Drop malformed records (counting them in [`ReadReport::dropped`])
    /// instead of failing the whole read — for real-world trace files with
    /// trailing garbage, torn writes, or the odd corrupt line.
    pub skip_malformed: bool,
}

/// What a read parsed and what it dropped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadReport {
    /// Records parsed into the trace.
    pub parsed: usize,
    /// Malformed records dropped (always 0 unless
    /// [`ReadOptions::skip_malformed`] is set).
    pub dropped: usize,
}

/// Writes a trace in webcachesim text format (`time id size` per line).
pub fn write_text<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    for r in trace {
        writeln!(w, "{} {} {}", r.time, r.object.0, r.size)?;
    }
    Ok(())
}

/// Consumes the remainder of the current line without buffering it —
/// bounded memory even against a gigabyte-long runaway line.
fn drain_line<R: BufRead>(r: &mut R) -> io::Result<()> {
    loop {
        let available = r.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                r.consume(newline + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                r.consume(len);
            }
        }
    }
}

/// Reads a trace in webcachesim text format. Blank lines and lines starting
/// with `#` are skipped; extra fields after `time id size` are ignored
/// (LRB-style traces append feature columns). Equivalent to
/// [`read_text_with`] under strict [`ReadOptions`].
pub fn read_text<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    read_text_with(r, ReadOptions::default()).map(|(trace, _)| trace)
}

/// Reads a trace in webcachesim text format with explicit [`ReadOptions`].
///
/// Malformed lines — non-numeric fields, missing fields, zero sizes,
/// invalid UTF-8, lines over [`MAX_LINE_BYTES`] — are a
/// [`TraceIoError::Parse`] with the 1-based line number, or are counted
/// and skipped when [`ReadOptions::skip_malformed`] is set. Oversized
/// lines are never buffered whole, so a corrupt multi-gigabyte line
/// cannot exhaust memory.
pub fn read_text_with<R: BufRead>(
    mut r: R,
    options: ReadOptions,
) -> Result<(Trace, ReadReport), TraceIoError> {
    let mut trace = Trace::new();
    let mut report = ReadReport::default();
    let mut buf: Vec<u8> = Vec::new();
    let mut lineno = 0usize;
    loop {
        lineno += 1;
        buf.clear();
        let read = r
            .by_ref()
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_until(b'\n', &mut buf)?;
        if read == 0 {
            break;
        }
        let oversized = buf.len() > MAX_LINE_BYTES && buf.last() != Some(&b'\n');
        let outcome = if oversized {
            Err(format!("line exceeds {MAX_LINE_BYTES} bytes"))
        } else {
            parse_text_line(&buf)
        };
        match outcome {
            Ok(Some(request)) => {
                trace.push(request);
                report.parsed += 1;
            }
            Ok(None) => {}
            Err(message) => {
                if !options.skip_malformed {
                    return Err(TraceIoError::Parse {
                        position: lineno,
                        message,
                    });
                }
                report.dropped += 1;
            }
        }
        if oversized {
            drain_line(&mut r)?;
        }
    }
    Ok((trace, report))
}

/// Parses one text line into a request; `Ok(None)` for blanks/comments,
/// `Err(description)` for malformed content.
fn parse_text_line(raw: &[u8]) -> Result<Option<Request>, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "invalid UTF-8".to_string())?;
    let line = text.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_ascii_whitespace();
    let mut parse = |name: &str| -> Result<u64, String> {
        parts
            .next()
            .ok_or_else(|| format!("missing field `{name}`"))?
            .parse::<u64>()
            .map_err(|e| format!("bad `{name}`: {e}"))
    };
    let time = parse("time")?;
    let id = parse("object_id")?;
    let size = parse("size")?;
    if size == 0 {
        return Err("size must be positive".into());
    }
    Ok(Some(Request {
        time,
        object: ObjectId(id),
        size,
    }))
}

/// Serializes a trace into the compact binary format.
pub fn to_binary(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(trace.len() * 24);
    for r in trace {
        buf.put_u64_le(r.time);
        buf.put_u64_le(r.object.0);
        buf.put_u64_le(r.size);
    }
    buf.freeze()
}

/// Deserializes a trace from the compact binary format. Equivalent to
/// [`from_binary_with`] under strict [`ReadOptions`].
pub fn from_binary(bytes: Bytes) -> Result<Trace, TraceIoError> {
    from_binary_with(bytes, ReadOptions::default()).map(|(trace, _)| trace)
}

/// Deserializes a trace from the compact binary format with explicit
/// [`ReadOptions`].
///
/// Trailing garbage (a byte length that is not a multiple of 24 — a torn
/// final write) and zero-size records are a [`TraceIoError::Parse`] with
/// the 1-based record number, or are counted and skipped when
/// [`ReadOptions::skip_malformed`] is set.
pub fn from_binary_with(
    mut bytes: Bytes,
    options: ReadOptions,
) -> Result<(Trace, ReadReport), TraceIoError> {
    let mut report = ReadReport::default();
    let trailing = bytes.len() % 24;
    if trailing != 0 {
        if !options.skip_malformed {
            return Err(TraceIoError::Parse {
                position: bytes.len() / 24 + 1,
                message: format!(
                    "binary trace length {} is not a multiple of 24",
                    bytes.len()
                ),
            });
        }
        // The torn trailing record counts as one dropped record.
        bytes = bytes.slice(0..bytes.len() - trailing);
        report.dropped += 1;
    }
    let mut trace = Trace::new();
    let mut record = 0usize;
    while bytes.has_remaining() {
        record += 1;
        let time = bytes.get_u64_le();
        let id = bytes.get_u64_le();
        let size = bytes.get_u64_le();
        if size == 0 {
            if !options.skip_malformed {
                return Err(TraceIoError::Parse {
                    position: record,
                    message: "size must be positive".into(),
                });
            }
            report.dropped += 1;
            continue;
        }
        trace.push(Request {
            time,
            object: ObjectId(id),
            size,
        });
        report.parsed += 1;
    }
    Ok((trace, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            Request::new(0, 42u64, 1000),
            Request::new(1, 7u64, 5),
            Request::new(2, 42u64, 1000),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# header\n\n0 1 10\n   \n1 2 20\n";
        let t = read_text(input.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_text("0 abc 10\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { position: 1, .. }));
    }

    #[test]
    fn text_rejects_missing_fields() {
        let err = read_text("0 1\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("size"), "{msg}");
    }

    #[test]
    fn text_rejects_zero_size() {
        let err = read_text("0 1 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let bytes = to_binary(&t);
        assert_eq!(bytes.len(), 3 * 24);
        let back = from_binary(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_rejects_truncation() {
        let t = sample();
        let bytes = to_binary(&t).slice(0..30);
        assert!(from_binary(bytes).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        assert!(read_text(buf.as_slice()).unwrap().is_empty());
        assert!(from_binary(to_binary(&t)).unwrap().is_empty());
    }

    #[test]
    fn oversized_line_is_a_typed_error_with_line_number() {
        let mut input = String::from("0 1 10\n");
        input.push_str(&"9".repeat(MAX_LINE_BYTES + 100));
        input.push('\n');
        let err = read_text(input.as_bytes()).unwrap_err();
        match err {
            TraceIoError::Parse { position, message } => {
                assert_eq!(position, 2);
                assert!(message.contains("exceeds"), "{message}");
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn lenient_mode_skips_oversized_line_and_keeps_reading() {
        let mut input = String::from("0 1 10\n");
        input.push_str(&"9".repeat(3 * MAX_LINE_BYTES));
        input.push('\n');
        input.push_str("1 2 20\n");
        let (trace, report) = read_text_with(
            input.as_bytes(),
            ReadOptions {
                skip_malformed: true,
            },
        )
        .unwrap();
        assert_eq!(trace.len(), 2, "lines after the runaway line must parse");
        assert_eq!(
            report,
            ReadReport {
                parsed: 2,
                dropped: 1
            }
        );
    }

    #[test]
    fn lenient_mode_counts_each_kind_of_bad_line() {
        // Garbage field, missing field, zero size, invalid UTF-8 — one
        // dropped record each; comments and blanks are not "dropped".
        let mut input: Vec<u8> = b"# header\n0 1 10\n0 abc 10\n0 1\n1 2 0\n".to_vec();
        input.extend_from_slice(&[0xff, 0xfe, b' ', b'1', b' ', b'2', b'\n']);
        input.extend_from_slice(b"\n2 3 30\n");
        let (trace, report) = read_text_with(
            input.as_slice(),
            ReadOptions {
                skip_malformed: true,
            },
        )
        .unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            report,
            ReadReport {
                parsed: 2,
                dropped: 4
            }
        );
    }

    #[test]
    fn strict_mode_reports_zero_dropped() {
        let (trace, report) =
            read_text_with("0 1 10\n1 2 20\n".as_bytes(), ReadOptions::default()).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(
            report,
            ReadReport {
                parsed: 2,
                dropped: 0
            }
        );
    }

    #[test]
    fn lenient_binary_drops_torn_trailing_record() {
        let t = sample();
        // 3 full records plus 7 garbage bytes of trailing junk.
        let mut raw = to_binary(&t).to_vec();
        raw.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02]);
        let strict = from_binary(Bytes::from(raw.clone()));
        assert!(strict.is_err(), "strict mode must reject trailing garbage");
        let (trace, report) = from_binary_with(
            Bytes::from(raw),
            ReadOptions {
                skip_malformed: true,
            },
        )
        .unwrap();
        assert_eq!(trace, t);
        assert_eq!(
            report,
            ReadReport {
                parsed: 3,
                dropped: 1
            }
        );
    }

    #[test]
    fn lenient_binary_drops_zero_size_records() {
        let t = sample();
        // Append a full 24-byte record with size 0 (invalid) by hand —
        // `Request::new` itself refuses to construct one.
        let mut raw = to_binary(&t).to_vec();
        raw.extend_from_slice(&3u64.to_le_bytes());
        raw.extend_from_slice(&9u64.to_le_bytes());
        raw.extend_from_slice(&0u64.to_le_bytes());
        assert!(from_binary(Bytes::from(raw.clone())).is_err());
        let (trace, report) = from_binary_with(
            Bytes::from(raw),
            ReadOptions {
                skip_malformed: true,
            },
        )
        .unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(
            report,
            ReadReport {
                parsed: 3,
                dropped: 1
            }
        );
    }
}
