//! Trace serialization.
//!
//! Two formats:
//!
//! - **Text** — the `webcachesim` format used by the paper's public code
//!   release (github.com/dasebe/webcachesim): one request per line,
//!   whitespace-separated `time object_id size`. Interoperable with the
//!   traces that the LRB/webcachesim research line publishes.
//! - **Binary** — three little-endian `u64`s per request, for fast loading
//!   of multi-million-request traces.

use std::io::{self, BufRead, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::request::{ObjectId, Request, Trace};

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying reader/writer failure.
    Io(io::Error),
    /// A malformed line or truncated record, with 1-based position.
    Parse {
        /// Line (text) or record (binary) number.
        position: usize,
        /// Problem description.
        message: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "I/O error: {e}"),
            TraceIoError::Parse { position, message } => {
                write!(f, "parse error at record {position}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in webcachesim text format (`time id size` per line).
pub fn write_text<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    for r in trace {
        writeln!(w, "{} {} {}", r.time, r.object.0, r.size)?;
    }
    Ok(())
}

/// Reads a trace in webcachesim text format. Blank lines and lines starting
/// with `#` are skipped.
pub fn read_text<R: BufRead>(r: R) -> Result<Trace, TraceIoError> {
    let mut trace = Trace::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_ascii_whitespace();
        let parse = |field: Option<&str>, name: &str| -> Result<u64, TraceIoError> {
            field
                .ok_or_else(|| TraceIoError::Parse {
                    position: lineno + 1,
                    message: format!("missing field `{name}`"),
                })?
                .parse::<u64>()
                .map_err(|e| TraceIoError::Parse {
                    position: lineno + 1,
                    message: format!("bad `{name}`: {e}"),
                })
        };
        let time = parse(parts.next(), "time")?;
        let id = parse(parts.next(), "object_id")?;
        let size = parse(parts.next(), "size")?;
        if size == 0 {
            return Err(TraceIoError::Parse {
                position: lineno + 1,
                message: "size must be positive".into(),
            });
        }
        trace.push(Request {
            time,
            object: ObjectId(id),
            size,
        });
    }
    Ok(trace)
}

/// Serializes a trace into the compact binary format.
pub fn to_binary(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(trace.len() * 24);
    for r in trace {
        buf.put_u64_le(r.time);
        buf.put_u64_le(r.object.0);
        buf.put_u64_le(r.size);
    }
    buf.freeze()
}

/// Deserializes a trace from the compact binary format.
pub fn from_binary(mut bytes: Bytes) -> Result<Trace, TraceIoError> {
    if !bytes.len().is_multiple_of(24) {
        return Err(TraceIoError::Parse {
            position: bytes.len() / 24 + 1,
            message: format!(
                "binary trace length {} is not a multiple of 24",
                bytes.len()
            ),
        });
    }
    let mut trace = Trace::new();
    let mut record = 0usize;
    while bytes.has_remaining() {
        record += 1;
        let time = bytes.get_u64_le();
        let id = bytes.get_u64_le();
        let size = bytes.get_u64_le();
        if size == 0 {
            return Err(TraceIoError::Parse {
                position: record,
                message: "size must be positive".into(),
            });
        }
        trace.push(Request {
            time,
            object: ObjectId(id),
            size,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        vec![
            Request::new(0, 42u64, 1000),
            Request::new(1, 7u64, 5),
            Request::new(2, 42u64, 1000),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn text_roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        let back = read_text(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# header\n\n0 1 10\n   \n1 2 20\n";
        let t = read_text(input.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_text("0 abc 10\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { position: 1, .. }));
    }

    #[test]
    fn text_rejects_missing_fields() {
        let err = read_text("0 1\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("size"), "{msg}");
    }

    #[test]
    fn text_rejects_zero_size() {
        let err = read_text("0 1 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let bytes = to_binary(&t);
        assert_eq!(bytes.len(), 3 * 24);
        let back = from_binary(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_rejects_truncation() {
        let t = sample();
        let bytes = to_binary(&t).slice(0..30);
        assert!(from_binary(bytes).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_text(&t, &mut buf).unwrap();
        assert!(read_text(buf.as_slice()).unwrap().is_empty());
        assert!(from_binary(to_binary(&t)).unwrap().is_empty());
    }
}
