//! Optimality validation for flow solutions.
//!
//! A feasible flow is optimal iff the residual graph contains no
//! negative-cost cycle, or equivalently iff there exists a node potential
//! under which every residual arc has non-negative reduced cost. This module
//! checks feasibility directly and optimality by running Bellman–Ford on the
//! residual graph. It is used by the test suites of both this crate and the
//! `opt` crate to certify the flows that OPT labels are derived from.

use std::fmt;

use crate::graph::Graph;
use crate::solver::FlowSolution;

/// A violated flow property, reported by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Some arc carries negative flow or exceeds its capacity.
    CapacityViolated {
        /// Pair index of the offending arc.
        arc: usize,
        /// Flow currently on the arc.
        flow: i64,
        /// Capacity of the arc.
        capacity: i64,
    },
    /// Flow conservation fails at a node: inflow - outflow != -supply.
    ConservationViolated {
        /// The offending node.
        node: usize,
        /// Net flow into the node minus its demand.
        imbalance: i64,
    },
    /// The residual graph contains a negative-cost cycle, so the flow is
    /// feasible but not optimal.
    NotOptimal,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::CapacityViolated {
                arc,
                flow,
                capacity,
            } => write!(f, "arc {arc}: flow {flow} outside [0, {capacity}]"),
            ValidationError::ConservationViolated { node, imbalance } => {
                write!(f, "node {node}: conservation violated by {imbalance}")
            }
            ValidationError::NotOptimal => {
                write!(f, "residual graph has a negative cycle: flow not optimal")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Checks that `solution` is a feasible *and* optimal flow for its graph.
pub fn validate(solution: &FlowSolution) -> Result<(), ValidationError> {
    let graph = solution.graph();
    check_feasible(graph)?;
    check_optimal(graph)?;
    Ok(())
}

/// Checks capacity bounds and flow conservation against node supplies.
pub fn check_feasible(graph: &Graph) -> Result<(), ValidationError> {
    let n = graph.num_nodes();
    let mut net = vec![0i64; n]; // outflow - inflow per node
    for pair in 0..graph.num_arcs() {
        let arc = crate::graph::ArcId(pair as u32);
        let flow = graph.arc_flow(arc);
        let capacity = graph.arc_capacity(arc);
        if flow < 0 || flow > capacity {
            return Err(ValidationError::CapacityViolated {
                arc: pair,
                flow,
                capacity,
            });
        }
        net[graph.arc_tail(arc).index()] += flow;
        net[graph.arc_head(arc).index()] -= flow;
    }
    for (v, &out_minus_in) in net.iter().enumerate() {
        // A source with supply s must ship s net units out.
        let imbalance = out_minus_in - graph.supply(v.into());
        if imbalance != 0 {
            return Err(ValidationError::ConservationViolated { node: v, imbalance });
        }
    }
    Ok(())
}

/// Checks optimality: Bellman–Ford over residual arcs must converge.
pub fn check_optimal(graph: &Graph) -> Result<(), ValidationError> {
    let n = graph.num_nodes();
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for v in 0..n {
            for &ai in &graph.adjacency[v] {
                let arc = &graph.arcs[ai as usize];
                if arc.residual <= 0 {
                    continue;
                }
                let u = arc.head as usize;
                let nd = dist[v] + arc.cost;
                if nd < dist[u] {
                    dist[u] = nd;
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(());
        }
        if round == n {
            return Err(ValidationError::NotOptimal);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn validates_optimal_solution() {
        let mut g = Graph::new(4);
        g.add_arc(NodeId(0), NodeId(1), 3, 1);
        g.add_arc(NodeId(1), NodeId(3), 3, 1);
        g.add_arc(NodeId(0), NodeId(2), 10, 4);
        g.add_arc(NodeId(2), NodeId(3), 10, 4);
        g.set_supply(NodeId(0), 8);
        g.set_supply(NodeId(3), -8);
        let sol = g.solve().unwrap();
        validate(&sol).unwrap();
    }

    #[test]
    fn detects_suboptimal_flow() {
        // Hand-build a feasible but suboptimal flow: route on the expensive
        // arc while the cheap one is empty.
        let mut g = Graph::new(2);
        let _cheap = g.add_arc(NodeId(0), NodeId(1), 5, 1);
        let expensive = g.add_arc(NodeId(0), NodeId(1), 5, 10);
        g.set_supply(NodeId(0), 5);
        g.set_supply(NodeId(1), -5);
        // Manually push flow on `expensive`.
        let ai = expensive.index() * 2;
        g.arcs[ai].residual -= 5;
        g.arcs[ai ^ 1].residual += 5;
        check_feasible(&g).unwrap();
        assert_eq!(check_optimal(&g), Err(ValidationError::NotOptimal));
    }

    #[test]
    fn detects_conservation_violation() {
        let mut g = Graph::new(2);
        let a = g.add_arc(NodeId(0), NodeId(1), 5, 1);
        // No supply, but flow routed anyway.
        let ai = a.index() * 2;
        g.arcs[ai].residual -= 2;
        g.arcs[ai ^ 1].residual += 2;
        assert!(matches!(
            check_feasible(&g),
            Err(ValidationError::ConservationViolated { node: 0, .. })
        ));
    }

    #[test]
    fn detects_capacity_violation() {
        let mut g = Graph::new(2);
        let a = g.add_arc(NodeId(0), NodeId(1), 5, 1);
        let ai = a.index() * 2;
        g.arcs[ai].residual = -1; // flow = 6 > capacity 5
        assert!(matches!(
            check_feasible(&g),
            Err(ValidationError::CapacityViolated { flow: 6, .. })
        ));
    }
}
