//! # mincostflow — exact minimum-cost flow
//!
//! This crate is the numerical substrate for computing offline-optimal (OPT)
//! caching decisions. The paper ("Towards Lightweight and Robust Machine
//! Learning for CDN Caching", HotNets 2018) uses the LEMON C++ library for
//! this; we implement the solver from scratch.
//!
//! The solver implements **successive shortest paths (SSP) with node
//! potentials** (Johnson reduction), which is exact for any min-cost flow
//! instance with integral capacities and costs:
//!
//! 1. Node potentials are initialized with Bellman–Ford (so arcs with
//!    negative costs are supported), or with zeros when all costs are
//!    non-negative.
//! 2. Repeatedly run Dijkstra on *reduced costs* from the set of nodes with
//!    remaining excess to the nearest node with remaining deficit, and push
//!    the bottleneck amount of flow along the shortest path.
//! 3. After each iteration, fold the computed distances into the potentials,
//!    keeping all reduced costs non-negative.
//!
//! A second, independent solver (Bellman–Ford-based SSP, [`solve_spfa`]) and
//! an optimality validator ([`validate`]) exist purely for cross-checking in
//! tests: two independent implementations plus a complementary-slackness
//! check give high confidence in the flow solutions that OPT labels are
//! derived from.
//!
//! ## Example
//!
//! ```
//! use mincostflow::{Graph, NodeId};
//!
//! // Route 4 units from node 0 to node 2; the direct arc is cheap but small.
//! let mut g = Graph::new(3);
//! let direct = g.add_arc(NodeId(0), NodeId(2), 3, 1);
//! g.add_arc(NodeId(0), NodeId(1), 10, 2);
//! g.add_arc(NodeId(1), NodeId(2), 10, 2);
//! g.set_supply(NodeId(0), 4);
//! g.set_supply(NodeId(2), -4);
//! let sol = g.solve().unwrap();
//! assert_eq!(sol.total_cost(), 3 * 1 + 1 * 4);
//! assert_eq!(sol.flow(direct), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dimacs;
pub mod graph;
pub mod solver;
pub mod spfa;
pub mod validate;

pub use builder::GraphBuilder;
pub use dimacs::{read_dimacs, write_dimacs, DimacsError};
pub use graph::{ArcId, Graph, NodeId};
pub use solver::{FlowError, FlowSolution};
pub use spfa::solve_spfa;
pub use validate::{check_feasible, check_optimal, validate, ValidationError};
