//! Ergonomic construction of flow instances.
//!
//! [`GraphBuilder`] lets callers name nodes with arbitrary keys instead of
//! dense indices and tracks the supply balance as arcs and supplies are
//! added. The `opt` crate uses it to assemble the per-request OPT graph.

use std::collections::HashMap;
use std::hash::Hash;

use crate::graph::{ArcId, Graph, NodeId};

/// Builds a [`Graph`] from arbitrary hashable node keys.
///
/// ```
/// use mincostflow::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.arc("src", "dst", 10, 2);
/// b.supply("src", 4);
/// b.supply("dst", -4);
/// let (graph, ids) = b.build();
/// let sol = graph.solve().unwrap();
/// assert_eq!(sol.total_cost(), 8);
/// assert!(ids.contains_key("src"));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder<K: Eq + Hash + Clone> {
    graph: Graph,
    ids: HashMap<K, NodeId>,
}

impl<K: Eq + Hash + Clone> Default for GraphBuilder<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> GraphBuilder<K> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder {
            graph: Graph::new(0),
            ids: HashMap::new(),
        }
    }

    /// Returns the node id for `key`, creating the node on first use.
    pub fn node(&mut self, key: K) -> NodeId {
        match self.ids.get(&key) {
            Some(&id) => id,
            None => {
                let id = self.graph.add_node();
                self.ids.insert(key, id);
                id
            }
        }
    }

    /// Adds an arc between (possibly new) keyed nodes.
    pub fn arc(&mut self, from: K, to: K, capacity: i64, cost: i64) -> ArcId {
        let f = self.node(from);
        let t = self.node(to);
        self.graph.add_arc(f, t, capacity, cost)
    }

    /// Adds `delta` to the supply of the keyed node.
    pub fn supply(&mut self, key: K, delta: i64) {
        let n = self.node(key);
        self.graph.add_supply(n, delta);
    }

    /// Current sum of supplies (zero for a feasible instance).
    pub fn balance(&self) -> i64 {
        self.graph.supply_balance()
    }

    /// Finishes construction, returning the graph and the key → node map.
    pub fn build(self) -> (Graph, HashMap<K, NodeId>) {
        (self.graph, self.ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_map_to_stable_ids() {
        let mut b: GraphBuilder<&str> = GraphBuilder::new();
        let a = b.node("a");
        let a2 = b.node("a");
        let c = b.node("c");
        assert_eq!(a, a2);
        assert_ne!(a, c);
    }

    #[test]
    fn supplies_accumulate_per_key() {
        let mut b: GraphBuilder<u64> = GraphBuilder::new();
        b.supply(7, 3);
        b.supply(7, 2);
        b.supply(9, -5);
        assert_eq!(b.balance(), 0);
        let (g, ids) = b.build();
        assert_eq!(g.supply(ids[&7]), 5);
    }

    #[test]
    fn builds_solvable_graph() {
        let mut b: GraphBuilder<&str> = GraphBuilder::new();
        let cheap = b.arc("s", "t", 5, 1);
        let exp = b.arc("s", "t", 5, 3);
        b.supply("s", 7);
        b.supply("t", -7);
        let (g, _) = b.build();
        let sol = g.solve().unwrap();
        assert_eq!(sol.flow(cheap), 5);
        assert_eq!(sol.flow(exp), 2);
    }
}
