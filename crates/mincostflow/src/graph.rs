//! Directed flow network with paired residual arcs.
//!
//! Arcs are stored in forward/backward pairs: the forward arc created by
//! [`Graph::add_arc`] lives at an even index and its residual twin at the
//! following odd index. `arc ^ 1` is therefore always the reverse arc, a
//! representation that keeps the residual graph implicit and cheap to
//! traverse during shortest-path computations.

use std::fmt;

/// Index of a node in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of a *forward* arc in a [`Graph`], as returned by [`Graph::add_arc`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub u32);

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(u32::try_from(v).expect("node index exceeds u32 range"))
    }
}

impl NodeId {
    /// The node index as a usize, for direct indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ArcId {
    /// The arc index as a usize, for direct indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// One directed arc of the internal representation (forward or residual).
#[derive(Clone, Debug)]
pub(crate) struct Arc {
    /// Head (target) node of the arc.
    pub head: u32,
    /// Remaining residual capacity.
    pub residual: i64,
    /// Cost per unit of flow (negated on the residual twin).
    pub cost: i64,
}

/// A directed flow network with integer capacities, integer per-unit costs,
/// and per-node supplies (positive = excess/source, negative = deficit/sink).
///
/// Capacities must be non-negative; costs may be negative (the solver falls
/// back to a Bellman–Ford potential initialization in that case). Supplies
/// must sum to zero for the instance to be feasible.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    pub(crate) arcs: Vec<Arc>,
    /// Original capacity of each arc pair's forward arc, indexed by pair.
    pub(crate) capacity: Vec<i64>,
    /// Outgoing arc indices (into `arcs`) per node — includes residual twins.
    pub(crate) adjacency: Vec<Vec<u32>>,
    pub(crate) supply: Vec<i64>,
    pub(crate) has_negative_cost: bool,
}

impl Graph {
    /// Creates a graph with `nodes` nodes and no arcs.
    pub fn new(nodes: usize) -> Self {
        Graph {
            arcs: Vec::new(),
            capacity: Vec::new(),
            adjacency: vec![Vec::new(); nodes],
            supply: vec![0; nodes],
            has_negative_cost: false,
        }
    }

    /// Creates a graph with `nodes` nodes, preallocating space for `arcs` arcs.
    pub fn with_capacity(nodes: usize, arcs: usize) -> Self {
        let mut g = Self::new(nodes);
        g.arcs.reserve(arcs * 2);
        g.capacity.reserve(arcs);
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of forward arcs (residual twins are not counted).
    pub fn num_arcs(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Appends a new node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        self.supply.push(0);
        NodeId::from(self.adjacency.len() - 1)
    }

    /// Adds a directed arc `from -> to` with the given capacity and per-unit
    /// cost, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 0` or either endpoint is out of range.
    pub fn add_arc(&mut self, from: NodeId, to: NodeId, capacity: i64, cost: i64) -> ArcId {
        assert!(capacity >= 0, "arc capacity must be non-negative");
        assert!(from.index() < self.num_nodes(), "`from` out of range");
        assert!(to.index() < self.num_nodes(), "`to` out of range");
        if cost < 0 {
            self.has_negative_cost = true;
        }
        let fwd = self.arcs.len() as u32;
        self.arcs.push(Arc {
            head: to.0,
            residual: capacity,
            cost,
        });
        self.arcs.push(Arc {
            head: from.0,
            residual: 0,
            cost: -cost,
        });
        self.adjacency[from.index()].push(fwd);
        self.adjacency[to.index()].push(fwd + 1);
        self.capacity.push(capacity);
        ArcId(fwd / 2)
    }

    /// Sets the supply of a node: positive values are sources (excess flow),
    /// negative values are sinks (flow demand).
    pub fn set_supply(&mut self, node: NodeId, supply: i64) {
        self.supply[node.index()] = supply;
    }

    /// Adds to the supply of a node (useful when a node is both the last
    /// request of one object and the first of another).
    pub fn add_supply(&mut self, node: NodeId, delta: i64) {
        self.supply[node.index()] += delta;
    }

    /// The supply currently assigned to `node`.
    pub fn supply(&self, node: NodeId) -> i64 {
        self.supply[node.index()]
    }

    /// Sum of all node supplies; a feasible instance requires zero.
    pub fn supply_balance(&self) -> i64 {
        self.supply.iter().sum()
    }

    /// Capacity the arc was created with.
    pub fn arc_capacity(&self, arc: ArcId) -> i64 {
        self.capacity[arc.index()]
    }

    /// Per-unit cost the arc was created with.
    pub fn arc_cost(&self, arc: ArcId) -> i64 {
        self.arcs[arc.index() * 2].cost
    }

    /// Tail (source node) of a forward arc.
    pub fn arc_tail(&self, arc: ArcId) -> NodeId {
        NodeId(self.arcs[arc.index() * 2 + 1].head)
    }

    /// Head (target node) of a forward arc.
    pub fn arc_head(&self, arc: ArcId) -> NodeId {
        NodeId(self.arcs[arc.index() * 2].head)
    }

    /// Flow currently routed on a forward arc (defined as original capacity
    /// minus remaining residual capacity). Zero before solving.
    pub fn arc_flow(&self, arc: ArcId) -> i64 {
        self.capacity[arc.index()] - self.arcs[arc.index() * 2].residual
    }

    /// Resets all flow to zero, keeping topology, capacities and supplies.
    pub fn reset_flow(&mut self) {
        for pair in 0..self.num_arcs() {
            self.arcs[pair * 2].residual = self.capacity[pair];
            self.arcs[pair * 2 + 1].residual = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc_pairing_invariants() {
        let mut g = Graph::new(2);
        let a = g.add_arc(NodeId(0), NodeId(1), 5, 7);
        assert_eq!(a, ArcId(0));
        assert_eq!(g.arc_tail(a), NodeId(0));
        assert_eq!(g.arc_head(a), NodeId(1));
        assert_eq!(g.arc_capacity(a), 5);
        assert_eq!(g.arc_cost(a), 7);
        assert_eq!(g.arc_flow(a), 0);
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.num_nodes(), 2);
    }

    #[test]
    fn supplies_accumulate() {
        let mut g = Graph::new(3);
        g.set_supply(NodeId(1), 4);
        g.add_supply(NodeId(1), -1);
        assert_eq!(g.supply(NodeId(1)), 3);
        assert_eq!(g.supply_balance(), 3);
        g.set_supply(NodeId(2), -3);
        assert_eq!(g.supply_balance(), 0);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut g = Graph::new(1);
        let n = g.add_node();
        assert_eq!(n, NodeId(1));
        assert_eq!(g.num_nodes(), 2);
        g.add_arc(NodeId(0), n, 1, 1);
        assert_eq!(g.num_arcs(), 1);
    }

    #[test]
    fn negative_cost_is_flagged() {
        let mut g = Graph::new(2);
        g.add_arc(NodeId(0), NodeId(1), 1, -3);
        assert!(g.has_negative_cost);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_panics() {
        let mut g = Graph::new(2);
        g.add_arc(NodeId(0), NodeId(1), -1, 0);
    }

    #[test]
    fn reset_flow_restores_capacity() {
        let mut g = Graph::new(2);
        let a = g.add_arc(NodeId(0), NodeId(1), 5, 1);
        g.set_supply(NodeId(0), 5);
        g.set_supply(NodeId(1), -5);
        let sol = g.clone().solve().unwrap();
        assert_eq!(sol.flow(a), 5);
        // The original graph is untouched; reset on a solved clone works too.
        let mut solved = g.clone();
        solved.solve_in_place().unwrap();
        assert_eq!(solved.arc_flow(a), 5);
        solved.reset_flow();
        assert_eq!(solved.arc_flow(a), 0);
    }
}
