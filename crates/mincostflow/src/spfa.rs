//! Independent reference solver used to cross-check [`crate::solver`].
//!
//! This is a deliberately simple successive-shortest-paths implementation
//! that recomputes shortest paths with SPFA (queue-based Bellman–Ford) on
//! the *raw* residual costs each iteration, with no potentials. It is
//! asymptotically slower than the Dijkstra-with-potentials solver but shares
//! no shortest-path machinery with it, which makes agreement between the two
//! a meaningful correctness signal in tests and in the [`crate::validate`]
//! property suite.

use std::collections::VecDeque;

use crate::graph::Graph;
use crate::solver::{FlowError, FlowSolution};

/// Solves the instance with the reference SPFA-based algorithm.
///
/// Produces a flow with the same total cost as [`Graph::solve`] (individual
/// arc flows may differ when multiple optima exist).
pub fn solve_spfa(mut graph: Graph) -> Result<FlowSolution, FlowError> {
    let balance = graph.supply_balance();
    if balance != 0 {
        return Err(FlowError::Unbalanced { balance });
    }
    let n = graph.num_nodes();
    if graph.has_negative_cost {
        detect_negative_cycle(&graph)?;
    }
    let mut excess = graph.supply.clone();
    let mut augmentations = 0usize;

    while let Some(source) = (0..n).find(|&v| excess[v] > 0) {
        // SPFA from the single chosen source on residual arcs.
        let mut dist = vec![i64::MAX; n];
        let mut parent: Vec<u32> = vec![u32::MAX; n];
        let mut in_queue = vec![false; n];
        let mut relaxations = vec![0u32; n];
        let mut queue = VecDeque::new();
        dist[source] = 0;
        queue.push_back(source as u32);
        in_queue[source] = true;
        while let Some(v) = queue.pop_front() {
            let v = v as usize;
            in_queue[v] = false;
            for &ai in &graph.adjacency[v] {
                let arc = &graph.arcs[ai as usize];
                if arc.residual <= 0 {
                    continue;
                }
                let u = arc.head as usize;
                let nd = dist[v].saturating_add(arc.cost);
                if nd < dist[u] {
                    dist[u] = nd;
                    parent[u] = ai;
                    if !in_queue[u] {
                        relaxations[u] += 1;
                        if relaxations[u] as usize > n + 1 {
                            return Err(FlowError::NegativeCycle);
                        }
                        queue.push_back(u as u32);
                        in_queue[u] = true;
                    }
                }
            }
        }

        // Cheapest reachable deficit node.
        let target = (0..n)
            .filter(|&v| excess[v] < 0 && dist[v] < i64::MAX)
            .min_by_key(|&v| dist[v]);
        let Some(t) = target else {
            return Err(FlowError::Infeasible);
        };

        let mut bottleneck = (-excess[t]).min(excess[source]);
        let mut v = t;
        while v != source {
            let ai = parent[v] as usize;
            bottleneck = bottleneck.min(graph.arcs[ai].residual);
            v = graph.arcs[ai ^ 1].head as usize;
        }
        let mut v = t;
        while v != source {
            let ai = parent[v] as usize;
            graph.arcs[ai].residual -= bottleneck;
            graph.arcs[ai ^ 1].residual += bottleneck;
            v = graph.arcs[ai ^ 1].head as usize;
        }
        excess[source] -= bottleneck;
        excess[t] += bottleneck;
        augmentations += 1;
    }

    let total_cost = graph.current_cost();
    Ok(FlowSolutionParts {
        graph,
        total_cost,
        augmentations,
    }
    .into())
}

/// Bellman–Ford over all arcs with residual capacity: rejects instances
/// whose initial residual graph contains a negative-cost cycle, matching the
/// primary solver's semantics (the SSP family is only defined on
/// negative-cycle-free instances).
fn detect_negative_cycle(graph: &Graph) -> Result<(), FlowError> {
    let n = graph.num_nodes();
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for v in 0..n {
            for &ai in &graph.adjacency[v] {
                let arc = &graph.arcs[ai as usize];
                if arc.residual <= 0 {
                    continue;
                }
                let u = arc.head as usize;
                if dist[v] + arc.cost < dist[u] {
                    dist[u] = dist[v] + arc.cost;
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(());
        }
        if round == n {
            return Err(FlowError::NegativeCycle);
        }
    }
    Ok(())
}

/// Internal constructor bridge so `FlowSolution` stays opaque outside the
/// crate while both solvers can produce it.
pub(crate) struct FlowSolutionParts {
    pub graph: Graph,
    pub total_cost: i128,
    pub augmentations: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    #[test]
    fn agrees_with_primary_solver_on_diamond() {
        let mut g = Graph::new(4);
        g.add_arc(NodeId(0), NodeId(1), 3, 1);
        g.add_arc(NodeId(1), NodeId(3), 3, 1);
        g.add_arc(NodeId(0), NodeId(2), 10, 4);
        g.add_arc(NodeId(2), NodeId(3), 10, 4);
        g.set_supply(NodeId(0), 8);
        g.set_supply(NodeId(3), -8);
        let a = g.clone().solve().unwrap().total_cost();
        let b = solve_spfa(g).unwrap().total_cost();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_unbalanced() {
        let mut g = Graph::new(2);
        g.set_supply(NodeId(0), 1);
        assert_eq!(
            solve_spfa(g).unwrap_err(),
            FlowError::Unbalanced { balance: 1 }
        );
    }

    #[test]
    fn rejects_infeasible() {
        let mut g = Graph::new(2);
        g.set_supply(NodeId(0), 1);
        g.set_supply(NodeId(1), -1);
        assert_eq!(solve_spfa(g).unwrap_err(), FlowError::Infeasible);
    }

    #[test]
    fn handles_negative_costs() {
        let mut g = Graph::new(3);
        g.add_arc(NodeId(0), NodeId(1), 5, -2);
        g.add_arc(NodeId(1), NodeId(2), 5, 1);
        g.add_arc(NodeId(0), NodeId(2), 5, 0);
        g.set_supply(NodeId(0), 5);
        g.set_supply(NodeId(2), -5);
        assert_eq!(solve_spfa(g).unwrap().total_cost(), -5);
    }
}
