//! Successive-shortest-paths solver with Johnson potentials.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::graph::{ArcId, Graph};

/// Why a min-cost flow instance could not be solved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// Node supplies do not sum to zero, so no feasible flow exists.
    Unbalanced {
        /// The (non-zero) sum of all supplies.
        balance: i64,
    },
    /// Some excess flow cannot reach any remaining deficit (cut of zero
    /// residual capacity separates sources from sinks).
    Infeasible,
    /// A negative-cost cycle of unbounded capacity was detected during
    /// potential initialization; the optimum is unbounded below.
    NegativeCycle,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Unbalanced { balance } => {
                write!(f, "supplies sum to {balance}, expected 0")
            }
            FlowError::Infeasible => write!(f, "no feasible flow: sources cut off from sinks"),
            FlowError::NegativeCycle => write!(f, "negative-cost cycle: optimum unbounded"),
        }
    }
}

impl std::error::Error for FlowError {}

/// An optimal flow, produced by [`Graph::solve`].
#[derive(Clone, Debug)]
pub struct FlowSolution {
    graph: Graph,
    total_cost: i128,
    augmentations: usize,
}

impl FlowSolution {
    /// Flow routed on a forward arc in the optimal solution.
    pub fn flow(&self, arc: ArcId) -> i64 {
        self.graph.arc_flow(arc)
    }

    /// Total cost `sum(flow(a) * cost(a))` of the optimal solution.
    ///
    /// Returned as `i128`: byte-granularity capacities times scaled per-byte
    /// costs can exceed `i64` on large windows.
    pub fn total_cost(&self) -> i128 {
        self.total_cost
    }

    /// Number of augmenting-path iterations the solver performed.
    pub fn augmentations(&self) -> usize {
        self.augmentations
    }

    /// The solved graph (arc flows are reflected in residual capacities).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the solution, returning the solved graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

impl From<crate::spfa::FlowSolutionParts> for FlowSolution {
    fn from(parts: crate::spfa::FlowSolutionParts) -> Self {
        FlowSolution {
            graph: parts.graph,
            total_cost: parts.total_cost,
            augmentations: parts.augmentations,
        }
    }
}

impl Graph {
    /// Solves the instance, consuming the graph.
    pub fn solve(mut self) -> Result<FlowSolution, FlowError> {
        let augmentations = self.solve_in_place()?;
        let total_cost = self.current_cost();
        Ok(FlowSolution {
            graph: self,
            total_cost,
            augmentations,
        })
    }

    /// Total cost of the flow currently routed on the graph.
    pub fn current_cost(&self) -> i128 {
        (0..self.num_arcs())
            .map(|i| {
                let arc = ArcId(i as u32);
                i128::from(self.arc_flow(arc)) * i128::from(self.arc_cost(arc))
            })
            .sum()
    }

    /// Solves the instance in place, leaving the optimal flow reflected in
    /// the arcs' residual capacities. Returns the number of augmentations.
    pub fn solve_in_place(&mut self) -> Result<usize, FlowError> {
        let balance = self.supply_balance();
        if balance != 0 {
            return Err(FlowError::Unbalanced { balance });
        }

        let n = self.num_nodes();
        let mut excess = self.supply.clone();
        let mut potential = vec![0i64; n];
        if self.has_negative_cost {
            self.init_potentials_bellman_ford(&mut potential)?;
        }

        let mut dist = vec![i64::MAX; n];
        let mut parent_arc: Vec<u32> = vec![u32::MAX; n];
        let mut visited = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();
        let mut touched: Vec<u32> = Vec::new();
        let mut augmentations = 0usize;

        // Single-source successive shortest paths: drain one excess node at
        // a time. On the near-linear graphs OPT produces, the nearest
        // deficit is usually close to the source, so each Dijkstra settles
        // a small local region instead of sweeping the whole graph.
        for source in 0..n {
            while excess[source] > 0 {
                // Dijkstra on reduced costs from `source`, stopping at the
                // first deficit node settled.
                heap.clear();
                for &t in &touched {
                    let t = t as usize;
                    dist[t] = i64::MAX;
                    visited[t] = false;
                    parent_arc[t] = u32::MAX;
                }
                touched.clear();
                dist[source] = 0;
                touched.push(source as u32);
                heap.push(Reverse((0, source as u32)));

                let mut target: Option<usize> = None;
                while let Some(Reverse((d, v))) = heap.pop() {
                    let v = v as usize;
                    if visited[v] {
                        continue;
                    }
                    visited[v] = true;
                    if excess[v] < 0 {
                        target = Some(v);
                        break;
                    }
                    for &ai in &self.adjacency[v] {
                        let arc = &self.arcs[ai as usize];
                        if arc.residual <= 0 {
                            continue;
                        }
                        let u = arc.head as usize;
                        if visited[u] {
                            continue;
                        }
                        let reduced = arc.cost + potential[v] - potential[u];
                        debug_assert!(reduced >= 0, "negative reduced cost {reduced}");
                        let nd = d + reduced;
                        if nd < dist[u] {
                            if dist[u] == i64::MAX {
                                touched.push(u as u32);
                            }
                            dist[u] = nd;
                            parent_arc[u] = ai;
                            heap.push(Reverse((nd, u as u32)));
                        }
                    }
                }

                let Some(t) = target else {
                    return Err(FlowError::Infeasible);
                };
                let d_t = dist[t];

                // Fold distances into potentials. Only settled nodes need
                // updating: a uniform shift of all potentials leaves every
                // reduced cost unchanged, so `π(v) += min(dist(v), d_t) −
                // d_t` touches just the settled region (zero for the rest).
                for &v in &touched {
                    let v = v as usize;
                    if visited[v] && dist[v] < d_t {
                        potential[v] += dist[v] - d_t;
                    }
                }

                // Walk parents back from the target to find the bottleneck.
                let mut bottleneck = (-excess[t]).min(excess[source]);
                let mut v = t;
                while parent_arc[v] != u32::MAX {
                    let ai = parent_arc[v] as usize;
                    bottleneck = bottleneck.min(self.arcs[ai].residual);
                    v = self.arcs[ai ^ 1].head as usize;
                }
                debug_assert_eq!(v, source);
                debug_assert!(bottleneck > 0);

                // Apply the augmentation.
                let mut v = t;
                while parent_arc[v] != u32::MAX {
                    let ai = parent_arc[v] as usize;
                    self.arcs[ai].residual -= bottleneck;
                    self.arcs[ai ^ 1].residual += bottleneck;
                    v = self.arcs[ai ^ 1].head as usize;
                }
                excess[source] -= bottleneck;
                excess[t] += bottleneck;
                augmentations += 1;
            }
        }

        Ok(augmentations)
    }

    /// Bellman–Ford potential initialization for graphs with negative arc
    /// costs. Distances start at zero for every node (equivalent to a free
    /// virtual source), so the result lower-bounds every reduced cost.
    fn init_potentials_bellman_ford(&self, potential: &mut [i64]) -> Result<(), FlowError> {
        let n = self.num_nodes();
        potential.fill(0);
        for round in 0..n {
            let mut changed = false;
            for v in 0..n {
                if potential[v] == i64::MAX {
                    continue;
                }
                for &ai in &self.adjacency[v] {
                    let arc = &self.arcs[ai as usize];
                    if arc.residual <= 0 {
                        continue;
                    }
                    let u = arc.head as usize;
                    let nd = potential[v] + arc.cost;
                    if nd < potential[u] {
                        potential[u] = nd;
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(());
            }
            if round == n - 1 {
                return Err(FlowError::NegativeCycle);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeId;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn single_arc() {
        let mut g = Graph::new(2);
        let a = g.add_arc(n(0), n(1), 10, 3);
        g.set_supply(n(0), 7);
        g.set_supply(n(1), -7);
        let sol = g.solve().unwrap();
        assert_eq!(sol.flow(a), 7);
        assert_eq!(sol.total_cost(), 21);
        assert_eq!(sol.augmentations(), 1);
    }

    #[test]
    fn prefers_cheaper_path() {
        // 0 -> 1 -> 3 costs 2, 0 -> 2 -> 3 costs 10.
        let mut g = Graph::new(4);
        let a01 = g.add_arc(n(0), n(1), 5, 1);
        let a13 = g.add_arc(n(1), n(3), 5, 1);
        let a02 = g.add_arc(n(0), n(2), 5, 5);
        let a23 = g.add_arc(n(2), n(3), 5, 5);
        g.set_supply(n(0), 5);
        g.set_supply(n(3), -5);
        let sol = g.solve().unwrap();
        assert_eq!(sol.flow(a01), 5);
        assert_eq!(sol.flow(a13), 5);
        assert_eq!(sol.flow(a02), 0);
        assert_eq!(sol.flow(a23), 0);
        assert_eq!(sol.total_cost(), 10);
    }

    #[test]
    fn splits_across_paths_when_capacity_binds() {
        let mut g = Graph::new(4);
        let cheap1 = g.add_arc(n(0), n(1), 3, 1);
        let cheap2 = g.add_arc(n(1), n(3), 3, 1);
        let exp1 = g.add_arc(n(0), n(2), 10, 4);
        let exp2 = g.add_arc(n(2), n(3), 10, 4);
        g.set_supply(n(0), 8);
        g.set_supply(n(3), -8);
        let sol = g.solve().unwrap();
        assert_eq!(sol.flow(cheap1), 3);
        assert_eq!(sol.flow(cheap2), 3);
        assert_eq!(sol.flow(exp1), 5);
        assert_eq!(sol.flow(exp2), 5);
        assert_eq!(sol.total_cost(), 3 * 2 + 5 * 8);
    }

    #[test]
    fn multi_source_multi_sink() {
        let mut g = Graph::new(4);
        g.add_arc(n(0), n(2), 10, 1);
        g.add_arc(n(0), n(3), 10, 5);
        g.add_arc(n(1), n(2), 10, 5);
        g.add_arc(n(1), n(3), 10, 1);
        g.set_supply(n(0), 4);
        g.set_supply(n(1), 6);
        g.set_supply(n(2), -4);
        g.set_supply(n(3), -6);
        let sol = g.solve().unwrap();
        assert_eq!(sol.total_cost(), 10);
    }

    #[test]
    fn unbalanced_rejected() {
        let mut g = Graph::new(2);
        g.add_arc(n(0), n(1), 1, 1);
        g.set_supply(n(0), 2);
        g.set_supply(n(1), -1);
        assert_eq!(g.solve().unwrap_err(), FlowError::Unbalanced { balance: 1 });
    }

    #[test]
    fn infeasible_rejected() {
        let mut g = Graph::new(3);
        g.add_arc(n(0), n(1), 1, 1); // node 2 unreachable
        g.set_supply(n(0), 1);
        g.set_supply(n(2), -1);
        assert_eq!(g.solve().unwrap_err(), FlowError::Infeasible);
    }

    #[test]
    fn capacity_too_small_is_infeasible() {
        let mut g = Graph::new(2);
        g.add_arc(n(0), n(1), 3, 1);
        g.set_supply(n(0), 5);
        g.set_supply(n(1), -5);
        assert_eq!(g.solve().unwrap_err(), FlowError::Infeasible);
    }

    #[test]
    fn negative_costs_supported() {
        // Taking the negative arc is optimal.
        let mut g = Graph::new(3);
        let neg = g.add_arc(n(0), n(1), 5, -2);
        let pos = g.add_arc(n(1), n(2), 5, 1);
        let direct = g.add_arc(n(0), n(2), 5, 0);
        g.set_supply(n(0), 5);
        g.set_supply(n(2), -5);
        let sol = g.solve().unwrap();
        assert_eq!(sol.flow(neg), 5);
        assert_eq!(sol.flow(pos), 5);
        assert_eq!(sol.flow(direct), 0);
        assert_eq!(sol.total_cost(), -5);
    }

    #[test]
    fn negative_cycle_detected() {
        let mut g = Graph::new(2);
        g.add_arc(n(0), n(1), 10, -5);
        g.add_arc(n(1), n(0), 10, 2);
        g.set_supply(n(0), 0);
        g.set_supply(n(1), 0);
        assert_eq!(g.solve().unwrap_err(), FlowError::NegativeCycle);
    }

    #[test]
    fn zero_supply_is_trivially_optimal() {
        let mut g = Graph::new(3);
        let a = g.add_arc(n(0), n(1), 10, 1);
        g.add_arc(n(1), n(2), 10, 1);
        let sol = g.solve().unwrap();
        assert_eq!(sol.flow(a), 0);
        assert_eq!(sol.total_cost(), 0);
        assert_eq!(sol.augmentations(), 0);
    }

    #[test]
    fn parallel_arcs_fill_cheapest_first() {
        let mut g = Graph::new(2);
        let cheap = g.add_arc(n(0), n(1), 4, 1);
        let mid = g.add_arc(n(0), n(1), 4, 2);
        let exp = g.add_arc(n(0), n(1), 4, 3);
        g.set_supply(n(0), 9);
        g.set_supply(n(1), -9);
        let sol = g.solve().unwrap();
        assert_eq!(sol.flow(cheap), 4);
        assert_eq!(sol.flow(mid), 4);
        assert_eq!(sol.flow(exp), 1);
        assert_eq!(sol.total_cost(), 4 + 8 + 3);
    }

    #[test]
    fn large_supplies_do_not_overflow_cost() {
        let mut g = Graph::new(2);
        g.add_arc(n(0), n(1), i64::MAX / 4, 1_000_000);
        g.set_supply(n(0), 1 << 40);
        g.set_supply(n(1), -(1 << 40));
        let sol = g.solve().unwrap();
        assert_eq!(sol.total_cost(), (1i128 << 40) * 1_000_000);
    }
}
