//! Property tests: the Dijkstra-with-potentials solver and the independent
//! SPFA reference solver must agree on total cost for random instances, and
//! every produced solution must pass the feasibility + optimality validator.

use mincostflow::{check_feasible, solve_spfa, validate, FlowError, Graph, NodeId};
use proptest::prelude::*;

/// A random instance description: arcs plus a set of source/sink pairs.
#[derive(Debug, Clone)]
struct Instance {
    nodes: usize,
    arcs: Vec<(u32, u32, i64, i64)>,
    demands: Vec<(u32, u32, i64)>, // (source, sink, amount)
}

fn instance_strategy(
    max_nodes: usize,
    max_arcs: usize,
    allow_negative: bool,
) -> impl Strategy<Value = Instance> {
    (2usize..=max_nodes).prop_flat_map(move |nodes| {
        let n = nodes as u32;
        let cost_range = if allow_negative { -8i64..20 } else { 0i64..20 };
        let arc = (0..n, 0..n, 1i64..30, cost_range);
        let demand = (0..n, 0..n, 1i64..15);
        (
            Just(nodes),
            proptest::collection::vec(arc, 1..=max_arcs),
            proptest::collection::vec(demand, 1..=3),
        )
            .prop_map(|(nodes, arcs, demands)| Instance {
                nodes,
                arcs,
                demands,
            })
    })
}

fn build(inst: &Instance) -> Graph {
    let mut g = Graph::new(inst.nodes);
    for &(f, t, cap, cost) in &inst.arcs {
        if f != t {
            g.add_arc(NodeId(f), NodeId(t), cap, cost);
        }
    }
    for &(s, t, amount) in &inst.demands {
        if s != t {
            g.add_supply(NodeId(s), amount);
            g.add_supply(NodeId(t), -amount);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solvers_agree_nonnegative_costs(inst in instance_strategy(8, 16, false)) {
        let g = build(&inst);
        let primary = g.clone().solve();
        let reference = solve_spfa(g);
        match (primary, reference) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.total_cost(), b.total_cost());
                validate(&a).unwrap();
                validate(&b).unwrap();
            }
            (Err(FlowError::Infeasible), Err(FlowError::Infeasible)) => {}
            (p, r) => prop_assert!(false, "solver disagreement: {p:?} vs {r:?}"),
        }
    }

    #[test]
    fn solvers_agree_negative_costs(inst in instance_strategy(6, 10, true)) {
        let g = build(&inst);
        let primary = g.clone().solve();
        let reference = solve_spfa(g);
        match (primary, reference) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.total_cost(), b.total_cost());
                validate(&a).unwrap();
            }
            (Err(FlowError::Infeasible), Err(FlowError::Infeasible)) => {}
            // Negative-cycle detection can fire in either solver; accept
            // any pairing where both report an error for cyclic instances.
            (Err(_), Err(_)) => {}
            (p, r) => prop_assert!(false, "solver disagreement: {p:?} vs {r:?}"),
        }
    }

    #[test]
    fn solutions_are_feasible(inst in instance_strategy(10, 24, false)) {
        let g = build(&inst);
        if let Ok(sol) = g.solve() {
            check_feasible(sol.graph()).unwrap();
        }
    }

    #[test]
    fn cost_never_negative_with_nonnegative_costs(inst in instance_strategy(8, 16, false)) {
        let g = build(&inst);
        if let Ok(sol) = g.solve() {
            prop_assert!(sol.total_cost() >= 0);
        }
    }

    #[test]
    fn doubling_all_capacities_never_increases_cost(inst in instance_strategy(7, 14, false)) {
        let g = build(&inst);
        let mut doubled = Graph::new(inst.nodes);
        for &(f, t, cap, cost) in &inst.arcs {
            if f != t {
                doubled.add_arc(NodeId(f), NodeId(t), cap * 2, cost);
            }
        }
        for &(s, t, amount) in &inst.demands {
            if s != t {
                doubled.add_supply(NodeId(s), amount);
                doubled.add_supply(NodeId(t), -amount);
            }
        }
        if let (Ok(a), Ok(b)) = (g.solve(), doubled.solve()) {
            prop_assert!(b.total_cost() <= a.total_cost());
        }
    }
}
