//! Simple offline bounds that sandwich any caching policy's performance.
//!
//! Used by the benchmark harness to sanity-check simulation results: every
//! online policy must fall between the all-miss floor and the
//! infinite-cache ceiling, and (up to the flow formulation's accuracy)
//! below OPT.

use std::collections::HashMap;

use cdn_trace::{ObjectId, Request};

/// Byte- and object-hit ceilings for an infinitely large cache: every
/// request after an object's first is a hit. No online or offline policy
/// can beat these numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InfiniteCacheBound {
    /// Maximum achievable hit bytes.
    pub hit_bytes: u64,
    /// Maximum achievable full-object hits.
    pub hits: u64,
    /// Total bytes requested.
    pub total_bytes: u64,
    /// Total requests.
    pub requests: u64,
}

impl InfiniteCacheBound {
    /// Byte hit ratio ceiling.
    pub fn bhr(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Object hit ratio ceiling.
    pub fn ohr(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Computes the infinite-cache bound for a window.
pub fn infinite_cache_bound(requests: &[Request]) -> InfiniteCacheBound {
    let mut seen: HashMap<ObjectId, ()> = HashMap::new();
    let mut bound = InfiniteCacheBound {
        hit_bytes: 0,
        hits: 0,
        total_bytes: 0,
        requests: requests.len() as u64,
    };
    for r in requests {
        bound.total_bytes += r.size;
        if seen.insert(r.object, ()).is_some() {
            bound.hit_bytes += r.size;
            bound.hits += 1;
        }
    }
    bound
}

/// Bytes that *must* miss under any policy (compulsory misses: the first
/// request to each object).
pub fn compulsory_miss_bytes(requests: &[Request]) -> u64 {
    let b = infinite_cache_bound(requests);
    b.total_bytes - b.hit_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_opt, OptConfig};
    use cdn_trace::{GeneratorConfig, TraceGenerator};

    #[test]
    fn bound_counts_rerequests_only() {
        let reqs = vec![
            Request::new(0, 1u64, 10),
            Request::new(1, 2u64, 5),
            Request::new(2, 1u64, 10),
            Request::new(3, 1u64, 10),
        ];
        let b = infinite_cache_bound(&reqs);
        assert_eq!(b.hit_bytes, 20);
        assert_eq!(b.hits, 2);
        assert_eq!(b.total_bytes, 35);
        assert_eq!(compulsory_miss_bytes(&reqs), 15);
    }

    #[test]
    fn opt_never_exceeds_infinite_cache_bound() {
        let trace = TraceGenerator::new(GeneratorConfig::small(5, 3_000)).generate();
        let bound = infinite_cache_bound(trace.requests());
        let opt = compute_opt(trace.requests(), &OptConfig::bhr(8 * 1024 * 1024)).unwrap();
        assert!(opt.hit_bytes <= bound.hit_bytes);
        assert!(opt.hits as u64 <= bound.hits);
    }

    #[test]
    fn opt_with_huge_cache_attains_the_bound() {
        let trace = TraceGenerator::new(GeneratorConfig::small(6, 1_000)).generate();
        let bound = infinite_cache_bound(trace.requests());
        let opt = compute_opt(trace.requests(), &OptConfig::bhr(u32::MAX as u64)).unwrap();
        assert_eq!(opt.hit_bytes, bound.hit_bytes);
        assert_eq!(opt.hits as u64, bound.hits);
    }

    #[test]
    fn empty_window_bound_is_zero() {
        let b = infinite_cache_bound(&[]);
        assert_eq!(b.bhr(), 0.0);
        assert_eq!(b.ohr(), 0.0);
    }
}
