//! Ranking-axis pruning (the HotNets paper's OPT speed-up, §2.1).
//!
//! "We propose to instead split the set of requests along a ranking axis,
//! where higher ranked objects matter more for CDN performance.
//! Specifically, we rank objects with the function `C_i / (S_i × L_i)`,
//! where `S_i` denotes object size and `L_i` is the distance to the
//! object's next request. This ranking enables us to save 90% of the
//! calculation time by running the algorithm only for popular requests."
//!
//! Mechanically: request pairs (a request and the next request to the same
//! object) below the rank threshold are removed from the flow instance, the
//! remaining requests are compacted into a smaller instance, and the
//! decisions are mapped back (pruned requests get the label *not cached*,
//! which is almost always what the full solver would decide for them — the
//! tests quantify the agreement).

use cdn_trace::Request;

use crate::belady::next_use_indices;
use crate::decisions::{compute_opt, OptResult};
use crate::flow_model::{OptConfig, OptError};

/// Result of a rank-pruned OPT computation.
#[derive(Clone, Debug)]
pub struct PrunedOpt {
    /// Decisions mapped back onto the full window.
    pub result: OptResult,
    /// Requests that participated in the reduced flow instance.
    pub kept_requests: usize,
    /// Requests in the full window.
    pub total_requests: usize,
    /// Same-object request pairs kept (bypass arcs of the reduced model).
    pub kept_pairs: usize,
    /// Same-object request pairs in the full model.
    pub total_pairs: usize,
}

impl PrunedOpt {
    /// Fraction of requests that entered the solver.
    pub fn kept_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.kept_requests as f64 / self.total_requests as f64
        }
    }
}

/// The paper's ranking function `C_i / (S_i × L_i)` for request `k`, where
/// `L_i` is the forward distance to the object's next request. Requests
/// without a next request rank at negative infinity (they can never produce
/// a hit).
pub fn rank_of(request: &Request, k: usize, next_use: usize, config: &OptConfig) -> f64 {
    if next_use == usize::MAX {
        return f64::NEG_INFINITY;
    }
    let cost = config.cost_model.cost(request.size) as f64;
    let distance = (next_use - k) as f64;
    cost / (request.size as f64 * distance)
}

/// Computes OPT keeping only the top `keep_fraction` of request pairs by
/// rank. `keep_fraction = 1.0` reproduces the exact result; `0.1` mirrors
/// the paper's "90% of the calculation time saved".
pub fn compute_opt_pruned(
    requests: &[Request],
    config: &OptConfig,
    keep_fraction: f64,
) -> Result<PrunedOpt, OptError> {
    if requests.is_empty() {
        return Err(OptError::EmptyWindow);
    }
    assert!(
        (0.0..=1.0).contains(&keep_fraction),
        "keep_fraction must be within [0, 1]"
    );
    let n = requests.len();
    let next_use = next_use_indices(requests);

    // Rank every request pair and keep the top fraction.
    let mut ranked: Vec<(f64, usize)> = (0..n)
        .filter(|&k| next_use[k] != usize::MAX)
        .map(|k| (rank_of(&requests[k], k, next_use[k], config), k))
        .collect();
    let total_pairs = ranked.len();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let keep_pairs = ((total_pairs as f64) * keep_fraction).ceil() as usize;
    let kept: Vec<usize> = ranked[..keep_pairs.min(total_pairs)]
        .iter()
        .map(|&(_, k)| k)
        .collect();

    // The reduced instance contains both endpoints of every kept pair.
    let mut in_reduced = vec![false; n];
    for &k in &kept {
        in_reduced[k] = true;
        in_reduced[next_use[k]] = true;
    }
    let reduced_indices: Vec<usize> = (0..n).filter(|&k| in_reduced[k]).collect();
    let reduced_requests: Vec<Request> = reduced_indices.iter().map(|&k| requests[k]).collect();

    // Degenerate case: nothing survives pruning → all-miss result.
    if reduced_requests.is_empty() {
        let total_bytes = requests.iter().map(|r| r.size).sum();
        return Ok(PrunedOpt {
            result: OptResult {
                admit: vec![false; n],
                cached_bytes: vec![0; n],
                full_hit: vec![false; n],
                split_requests: 0,
                total_bytes,
                hit_bytes: 0,
                hits: 0,
                scaled_miss_cost: 0,
                augmentations: 0,
            },
            kept_requests: 0,
            total_requests: n,
            kept_pairs: 0,
            total_pairs,
        });
    }

    let reduced = compute_opt(&reduced_requests, config)?;

    // Map decisions back to the full window.
    let mut admit = vec![false; n];
    let mut cached_bytes = vec![0u64; n];
    let mut full_hit = vec![false; n];
    let mut hit_bytes = 0u64;
    let mut hits = 0usize;
    for (sub, &orig) in reduced_indices.iter().enumerate() {
        admit[orig] = reduced.admit[sub];
        cached_bytes[orig] = reduced.cached_bytes[sub];
        full_hit[orig] = reduced.full_hit[sub];
        hit_bytes += reduced.cached_bytes[sub];
        if reduced.full_hit[sub] {
            hits += 1;
        }
    }
    let total_bytes = requests.iter().map(|r| r.size).sum();

    Ok(PrunedOpt {
        result: OptResult {
            admit,
            cached_bytes,
            full_hit,
            split_requests: reduced.split_requests,
            total_bytes,
            hit_bytes,
            hits,
            scaled_miss_cost: reduced.scaled_miss_cost,
            augmentations: reduced.augmentations,
        },
        kept_requests: reduced_requests.len(),
        total_requests: n,
        kept_pairs: kept.len(),
        total_pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{GeneratorConfig, TraceGenerator};

    #[test]
    fn keep_everything_matches_exact() {
        let trace = TraceGenerator::new(GeneratorConfig::small(1, 2_000)).generate();
        let cfg = OptConfig::bhr(20 * 1024 * 1024);
        let exact = compute_opt(trace.requests(), &cfg).unwrap();
        let pruned = compute_opt_pruned(trace.requests(), &cfg, 1.0).unwrap();
        // The reduced instance renumbers nodes, so the solver may pick a
        // *different but equally optimal* flow; the objective must match
        // exactly, the decisions almost everywhere.
        assert_eq!(exact.hit_bytes, pruned.result.hit_bytes);
        assert_eq!(exact.scaled_miss_cost, pruned.result.scaled_miss_cost);
        let agree = exact
            .admit
            .iter()
            .zip(&pruned.result.admit)
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            agree as f64 / exact.admit.len() as f64 > 0.98,
            "agreement {agree}/{}",
            exact.admit.len()
        );
    }

    #[test]
    fn pruning_shrinks_the_instance() {
        let trace = TraceGenerator::new(GeneratorConfig::small(2, 4_000)).generate();
        let cfg = OptConfig::bhr(20 * 1024 * 1024);
        let pruned = compute_opt_pruned(trace.requests(), &cfg, 0.2).unwrap();
        assert!(pruned.kept_requests < pruned.total_requests);
        assert!(pruned.kept_pairs <= (pruned.total_pairs / 5) + 1);
    }

    #[test]
    fn pruned_decisions_agree_with_exact_on_most_requests() {
        let trace = TraceGenerator::new(GeneratorConfig::small(3, 3_000)).generate();
        let cfg = OptConfig::bhr(10 * 1024 * 1024);
        let exact = compute_opt(trace.requests(), &cfg).unwrap();
        let pruned = compute_opt_pruned(trace.requests(), &cfg, 0.5).unwrap();
        let agree = exact
            .admit
            .iter()
            .zip(&pruned.result.admit)
            .filter(|(a, b)| a == b)
            .count();
        let agreement = agree as f64 / exact.admit.len() as f64;
        assert!(agreement > 0.9, "agreement = {agreement}");
    }

    #[test]
    fn keep_zero_yields_all_miss() {
        let trace = TraceGenerator::new(GeneratorConfig::small(4, 500)).generate();
        let cfg = OptConfig::bhr(1024 * 1024);
        let pruned = compute_opt_pruned(trace.requests(), &cfg, 0.0).unwrap();
        // ceil(0 * pairs) = 0 pairs kept... but ceil of 0.0 is 0.
        assert_eq!(pruned.kept_pairs, 0);
        assert!(pruned.result.admit.iter().all(|&a| !a));
    }

    #[test]
    fn rank_prefers_cheap_soon_requests() {
        let cfg = OptConfig::bhr(100);
        let small_soon = Request::new(0, 1u64, 10);
        let large_late = Request::new(0, 2u64, 1000);
        // BHR: C = S, so rank = 1/L — distance decides.
        assert!(rank_of(&small_soon, 0, 2, &cfg) > rank_of(&large_late, 0, 50, &cfg));
        // No next request = minimal rank.
        assert_eq!(rank_of(&small_soon, 0, usize::MAX, &cfg), f64::NEG_INFINITY);
    }
}
