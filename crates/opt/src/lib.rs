//! # opt — offline-optimal caching decisions
//!
//! Implements §2.1 of the paper: OPT minimizes the total cost of cache
//! misses subject to never exceeding the cache capacity, and is approximated
//! by the min-cost flow formulation of Berger, Beckmann & Harchol-Balter
//! ("Practical Bounds on Optimal Caching with Variable Object Sizes",
//! SIGMETRICS 2018):
//!
//! - one node per request, connected by **central** arcs with capacity equal
//!   to the cache size and zero cost (a byte of flow on a central arc is a
//!   byte stored in the cache);
//! - a **bypass** arc between each pair of consecutive requests to the same
//!   object, with capacity equal to the object size and per-byte cost equal
//!   to the retrieval cost over the size (a byte of flow on a bypass arc is
//!   a byte of cache miss);
//! - excess flow (the object size) at an object's first request, equal
//!   demand at its last.
//!
//! A request is *cached by OPT* iff all of its bytes are routed along the
//! central path to the object's next request (see [`OptResult`]).
//!
//! On top of the exact formulation this crate provides the two
//! approximations the paper describes:
//!
//! - [`segmentation`] — split the trace along the **time axis** and solve
//!   segments independently (the approach of the SIGMETRICS paper);
//! - [`rank_pruning`] — the HotNets paper's proposal: split along a
//!   **ranking axis** `C_i / (S_i · L_i)` and run the flow solver only for
//!   popular requests, "saving 90% of the calculation time".
//!
//! [`belady`] implements the classic farthest-in-future policy, which is
//! exactly optimal for unit-size objects and is used to cross-validate the
//! flow formulation in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod belady;
pub mod bounds;
pub mod decisions;
pub mod flow_model;
pub mod rank_pruning;
pub mod segmentation;

pub use decisions::{compute_opt, OptResult};
pub use flow_model::{FlowModel, OptConfig, OptError};
pub use rank_pruning::{compute_opt_pruned, PrunedOpt};
pub use segmentation::{compute_opt_segmented, compute_opt_segmented_parallel};
