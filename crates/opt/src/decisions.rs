//! Extracting OPT's per-request decisions from a solved flow.

use cdn_trace::Request;

use crate::flow_model::{FlowModel, OptConfig, OptError};

/// OPT's decisions and performance for one request window.
///
/// Per the paper: "To derive whether OPT caches a request, we verify that
/// all the request's bytes (starting at its node) are routed along the
/// central path. If not, OPT does not cache this object." The footnote
/// notes that fractional splits are possible in theory but rare; the
/// [`OptResult::split_requests`] counter records how often they occur.
#[derive(Clone, Debug)]
pub struct OptResult {
    /// Per request: does OPT admit (cache) the object at this request?
    pub admit: Vec<bool>,
    /// Per request: bytes served from the cache (`size` on a full hit, `0`
    /// on a full miss or a first-ever request, in between on a split).
    pub cached_bytes: Vec<u64>,
    /// Per request: true iff *all* bytes were served from cache.
    pub full_hit: Vec<bool>,
    /// Requests where the flow split between central path and bypass.
    pub split_requests: usize,
    /// Total bytes requested in the window.
    pub total_bytes: u64,
    /// Total bytes served from cache across the window.
    pub hit_bytes: u64,
    /// Number of requests with a full hit.
    pub hits: usize,
    /// The solver's objective: total scaled miss cost.
    pub scaled_miss_cost: i128,
    /// Number of augmenting-path iterations used by the solver.
    pub augmentations: usize,
}

impl OptResult {
    /// OPT's byte hit ratio over the window.
    pub fn bhr(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / self.total_bytes as f64
        }
    }

    /// OPT's object hit ratio over the window (full hits only).
    pub fn ohr(&self) -> f64 {
        if self.admit.is_empty() {
            0.0
        } else {
            self.hits as f64 / self.admit.len() as f64
        }
    }

    /// Number of requests covered.
    pub fn len(&self) -> usize {
        self.admit.len()
    }

    /// True when the result covers no requests.
    pub fn is_empty(&self) -> bool {
        self.admit.is_empty()
    }
}

/// Computes OPT's decisions for a window of requests by building and solving
/// the min-cost flow model.
///
/// Runtime grows superlinearly with the window; for long windows use
/// [`crate::compute_opt_segmented`] or [`crate::compute_opt_pruned`].
pub fn compute_opt(requests: &[Request], config: &OptConfig) -> Result<OptResult, OptError> {
    if requests.is_empty() {
        return Err(OptError::EmptyWindow);
    }
    let mut model = FlowModel::build(requests, config);
    let augmentations = model.graph.solve_in_place()?;
    Ok(extract(requests, &model, augmentations))
}

/// Reads decisions out of a `FlowModel` whose graph has been solved.
pub(crate) fn extract(requests: &[Request], model: &FlowModel, augmentations: usize) -> OptResult {
    let n = requests.len();
    let mut admit = vec![false; n];
    let mut cached_bytes = vec![0u64; n];
    let mut full_hit = vec![false; n];
    let mut split_requests = 0usize;
    let mut total_bytes = 0u64;
    let mut hit_bytes = 0u64;
    let mut hits = 0usize;
    let mut scaled_miss_cost: i128 = 0;

    for (k, r) in requests.iter().enumerate() {
        total_bytes += r.size;
        // Admission: all bytes leave along the central path.
        if let Some(arc) = model.bypass_out[k] {
            let miss_flow = model.graph.arc_flow(arc);
            admit[k] = miss_flow == 0;
            if miss_flow > 0 && miss_flow < r.size as i64 {
                split_requests += 1;
            }
        }
        // Hit accounting: bytes that arrived through the cache.
        if let Some(arc) = model.bypass_in[k] {
            let miss_flow = model.graph.arc_flow(arc) as u64;
            let cached = r.size - miss_flow;
            cached_bytes[k] = cached;
            hit_bytes += cached;
            if miss_flow == 0 {
                full_hit[k] = true;
                hits += 1;
            }
            scaled_miss_cost += i128::from(miss_flow) * i128::from(model.per_byte_cost[k]);
        }
    }

    OptResult {
        admit,
        cached_bytes,
        full_hit,
        split_requests,
        total_bytes,
        hit_bytes,
        hits,
        scaled_miss_cost,
        augmentations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::example;
    use cdn_trace::Request;

    #[test]
    fn empty_window_is_an_error() {
        assert!(matches!(
            compute_opt(&[], &OptConfig::bhr(10)),
            Err(OptError::EmptyWindow)
        ));
    }

    #[test]
    fn infinite_cache_caches_every_reused_request() {
        // Cache big enough for everything: every non-last request of a
        // multi-request object is admitted; every non-first is a full hit.
        let trace = example::figure3_trace();
        let r = compute_opt(trace.requests(), &OptConfig::bhr(1_000)).unwrap();
        // a b c b d a c d a b b a
        // Non-first requests: indices 3(b),5(a),6(c),7(d),8(a),9(b),10(b),11(a).
        let expected_hits = [3, 5, 6, 7, 8, 9, 10, 11];
        for k in 0..r.len() {
            assert_eq!(
                r.full_hit[k],
                expected_hits.contains(&k),
                "hit mismatch at request {k}"
            );
        }
        assert_eq!(r.hits, 8);
        assert_eq!(r.scaled_miss_cost, 0);
        // Every request with a future re-request is admitted.
        for k in [0, 1, 2, 3, 4, 5, 8, 9] {
            assert!(r.admit[k], "request {k} should be admitted");
        }
        // Last requests are never admitted (no future benefit):
        // c at 6, d at 7, b at 10, a at 11.
        assert!(!r.admit[6] && !r.admit[7] && !r.admit[10] && !r.admit[11]);
    }

    #[test]
    fn zero_cache_caches_nothing() {
        let trace = example::figure3_trace();
        let r = compute_opt(trace.requests(), &OptConfig::bhr(0)).unwrap();
        assert!(r.admit.iter().all(|&a| !a));
        assert_eq!(r.hits, 0);
        assert_eq!(r.hit_bytes, 0);
    }

    #[test]
    fn figure3_with_cache_3_is_selective() {
        // With capacity 3 OPT must choose: caching `a` (size 3) uses the
        // whole cache. The small objects b (1) and c (1) and d (2) compete.
        let trace = example::figure3_trace();
        let r = compute_opt(
            trace.requests(),
            &OptConfig::bhr(example::FIGURE4_CACHE_SIZE),
        )
        .unwrap();
        // OPT must achieve at least what "cache only b" achieves: b is
        // requested 4 times (3 re-requests, 1 byte each = 3 hit bytes) and
        // fits alongside c or d at times.
        assert!(r.hit_bytes >= 3, "hit_bytes = {}", r.hit_bytes);
        // And the cache constraint must bind: with 19 re-requested bytes
        // total, capacity 3 cannot serve them all.
        assert!(r.hit_bytes < 19);
        // Hits and admissions must be consistent: a full hit at k requires
        // the previous same-object request to have been admitted.
        let reqs = trace.requests();
        for k in 0..r.len() {
            if r.full_hit[k] {
                let prev = (0..k).rfind(|&i| reqs[i].object == reqs[k].object).unwrap();
                assert!(r.admit[prev], "hit at {k} but no admit at {prev}");
            }
        }
    }

    #[test]
    fn unit_size_trace_matches_hand_computed_opt() {
        // Objects x,y,z of size 1, cache of 1: x y x y x — OPT can keep only
        // one object; keeping x yields 2 hits (requests 2 and 4).
        let reqs: Vec<Request> = [(1u64, 1u64), (2, 1), (1, 1), (2, 1), (1, 1)]
            .iter()
            .enumerate()
            .map(|(i, &(id, s))| Request::new(i as u64, id, s))
            .collect();
        let r = compute_opt(&reqs, &OptConfig::ohr(1)).unwrap();
        // OPT achieves exactly 2 hits here: y's re-requests interleave with
        // x's, and only one object fits.
        assert_eq!(r.hits, 2, "hits = {:?}", r.full_hit);
    }

    #[test]
    fn bhr_and_ohr_are_ratios() {
        let trace = example::figure3_trace();
        let r = compute_opt(trace.requests(), &OptConfig::bhr(1_000)).unwrap();
        assert!((0.0..=1.0).contains(&r.bhr()));
        assert!((0.0..=1.0).contains(&r.ohr()));
        assert!((r.ohr() - 8.0 / 12.0).abs() < 1e-12);
    }
}
