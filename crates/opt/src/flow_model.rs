//! Trace → min-cost flow translation (paper §2.1, Figure 4).

use std::collections::HashMap;

use cdn_trace::{CostModel, ObjectId, Request};
use mincostflow::{ArcId, FlowError, Graph, NodeId};

/// Default fixed-point scale for per-byte costs.
///
/// Bypass arcs cost `C_i / S_i` per byte, which is fractional for every cost
/// model except byte-hit-ratio; costs are stored as integers after
/// multiplying by this scale. 2^24 keeps exact per-byte resolution for
/// objects up to 16 MiB while leaving ample headroom in `i64` path-cost
/// arithmetic for million-request windows.
pub const DEFAULT_COST_SCALE: u64 = 1 << 24;

/// Configuration of an OPT computation.
#[derive(Clone, Debug)]
pub struct OptConfig {
    /// Cache capacity in bytes (capacity of the central arcs).
    pub cache_size: u64,
    /// How the miss cost `C_i` is derived from object size.
    pub cost_model: CostModel,
    /// Fixed-point scale applied to per-byte costs.
    pub cost_scale: u64,
}

impl OptConfig {
    /// OPT for the byte hit ratio (`C_i = S_i`), the paper's main setting.
    pub fn bhr(cache_size: u64) -> Self {
        OptConfig {
            cache_size,
            cost_model: CostModel::ByteHitRatio,
            cost_scale: DEFAULT_COST_SCALE,
        }
    }

    /// OPT for the object hit ratio (`C_i = 1`).
    pub fn ohr(cache_size: u64) -> Self {
        OptConfig {
            cache_size,
            cost_model: CostModel::ObjectHitRatio,
            cost_scale: DEFAULT_COST_SCALE,
        }
    }

    /// The scaled integer per-byte cost of a miss of an object of `size`
    /// bytes: `max(1, round(scale * C_i / S_i))`.
    pub fn scaled_per_byte_cost(&self, size: u64) -> i64 {
        let c = self.cost_model.cost(size) as f64;
        let per_byte = c / size as f64 * self.cost_scale as f64;
        (per_byte.round() as i64).max(1)
    }
}

/// Errors from OPT computation.
#[derive(Debug)]
pub enum OptError {
    /// The underlying flow instance could not be solved. With a correctly
    /// built model this indicates a bug, not a user error: the bypass arcs
    /// always provide a feasible all-miss routing.
    Flow(FlowError),
    /// The window is empty.
    EmptyWindow,
}

impl std::fmt::Display for OptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptError::Flow(e) => write!(f, "flow solve failed: {e}"),
            OptError::EmptyWindow => write!(f, "cannot compute OPT for an empty window"),
        }
    }
}

impl std::error::Error for OptError {}

impl From<FlowError> for OptError {
    fn from(e: FlowError) -> Self {
        OptError::Flow(e)
    }
}

/// The min-cost flow instance for a request window, with the bookkeeping
/// needed to read OPT decisions back out of a solved flow.
pub struct FlowModel {
    /// The flow instance (node *k* = request *k* of the window).
    pub graph: Graph,
    /// For each request, the bypass arc to the *next* request of the same
    /// object, if any. `None` for the last request of an object.
    pub bypass_out: Vec<Option<ArcId>>,
    /// For each request, the bypass arc from the *previous* request of the
    /// same object, if any. `None` for first requests.
    pub bypass_in: Vec<Option<ArcId>>,
    /// Scaled per-byte miss cost per request (for miss-cost accounting).
    pub per_byte_cost: Vec<i64>,
}

impl FlowModel {
    /// Builds the Figure 4 flow instance for a window of requests.
    ///
    /// Single-request objects get no supplies and no bypass arcs: OPT gains
    /// nothing from caching them, so their admission label is *false* and
    /// they do not constrain the flow.
    pub fn build(requests: &[Request], config: &OptConfig) -> Self {
        let n = requests.len();
        let mut graph = Graph::with_capacity(n, 2 * n);
        // Central path: capacity = cache size, cost 0.
        for k in 0..n.saturating_sub(1) {
            graph.add_arc(
                NodeId::from(k),
                NodeId::from(k + 1),
                config.cache_size as i64,
                0,
            );
        }

        let mut bypass_out: Vec<Option<ArcId>> = vec![None; n];
        let mut bypass_in: Vec<Option<ArcId>> = vec![None; n];
        let mut per_byte_cost: Vec<i64> = Vec::with_capacity(n);
        let mut prev_occurrence: HashMap<ObjectId, usize> = HashMap::new();
        let mut first_occurrence: HashMap<ObjectId, usize> = HashMap::new();

        for (k, r) in requests.iter().enumerate() {
            per_byte_cost.push(config.scaled_per_byte_cost(r.size));
            if let Some(&prev) = prev_occurrence.get(&r.object) {
                let arc = graph.add_arc(
                    NodeId::from(prev),
                    NodeId::from(k),
                    r.size as i64,
                    per_byte_cost[k],
                );
                bypass_out[prev] = Some(arc);
                bypass_in[k] = Some(arc);
            } else {
                first_occurrence.insert(r.object, k);
            }
            prev_occurrence.insert(r.object, k);
        }

        // Supplies: +size at first request, -size at last request of each
        // object that is requested more than once.
        for (object, &first) in &first_occurrence {
            let last = prev_occurrence[object];
            if last != first {
                let size = requests[first].size as i64;
                graph.add_supply(NodeId::from(first), size);
                graph.add_supply(NodeId::from(last), -size);
            }
        }

        FlowModel {
            graph,
            bypass_out,
            bypass_in,
            per_byte_cost,
        }
    }

    /// Number of requests (= nodes) in the model.
    pub fn len(&self) -> usize {
        self.bypass_out.len()
    }

    /// True when the model covers no requests.
    pub fn is_empty(&self) -> bool {
        self.bypass_out.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::example;

    #[test]
    fn figure4_graph_shape() {
        // The Figure 4 graph: 12 nodes, 11 central edges, and bypass edges
        // for each consecutive same-object pair: a (3 pairs), b (3 pairs),
        // c (1 pair), d (1 pair) = 8 bypass arcs.
        let trace = example::figure3_trace();
        let model = FlowModel::build(
            trace.requests(),
            &OptConfig::bhr(example::FIGURE4_CACHE_SIZE),
        );
        assert_eq!(model.graph.num_nodes(), 12);
        assert_eq!(model.graph.num_arcs(), 11 + 8);
        // Supplies match the +3/+1/+1/+2 and matching negatives of Figure 4.
        assert_eq!(model.graph.supply(NodeId(0)), 3); // first a
        assert_eq!(model.graph.supply(NodeId(1)), 1); // first b
        assert_eq!(model.graph.supply(NodeId(2)), 1); // first c
        assert_eq!(model.graph.supply(NodeId(4)), 2); // first d
        assert_eq!(model.graph.supply(NodeId(6)), -1); // last c
        assert_eq!(model.graph.supply(NodeId(7)), -2); // last d
        assert_eq!(model.graph.supply(NodeId(10)), -1); // last b
        assert_eq!(model.graph.supply(NodeId(11)), -3); // last a
        assert_eq!(model.graph.supply_balance(), 0);
    }

    #[test]
    fn bypass_arcs_link_consecutive_same_object_requests() {
        let trace = example::figure3_trace();
        let model = FlowModel::build(trace.requests(), &OptConfig::bhr(3));
        // First a (index 0) bypasses to second a (index 5).
        let arc = model.bypass_out[0].unwrap();
        assert_eq!(model.graph.arc_tail(arc), NodeId(0));
        assert_eq!(model.graph.arc_head(arc), NodeId(5));
        assert_eq!(model.graph.arc_capacity(arc), 3);
        assert_eq!(model.bypass_in[5], Some(arc));
        // Last request of each object has no outgoing bypass.
        assert!(model.bypass_out[11].is_none()); // last a
        assert!(model.bypass_out[10].is_none()); // last b
    }

    #[test]
    fn per_byte_costs_bhr_equal_scale() {
        let trace = example::figure3_trace();
        let cfg = OptConfig::bhr(3);
        let model = FlowModel::build(trace.requests(), &cfg);
        // BHR: C_i = S_i, so every per-byte cost is exactly the scale.
        for &c in &model.per_byte_cost {
            assert_eq!(c, DEFAULT_COST_SCALE as i64);
        }
    }

    #[test]
    fn per_byte_costs_ohr_scale_inversely_with_size() {
        let cfg = OptConfig::ohr(100);
        assert_eq!(cfg.scaled_per_byte_cost(1), DEFAULT_COST_SCALE as i64);
        assert_eq!(cfg.scaled_per_byte_cost(2), (DEFAULT_COST_SCALE / 2) as i64);
        // Costs never round down to zero.
        assert_eq!(cfg.scaled_per_byte_cost(u64::MAX / 2), 1);
    }

    #[test]
    fn single_request_objects_do_not_constrain_flow() {
        let requests = vec![
            Request::new(0, 1u64, 10),
            Request::new(1, 2u64, 20), // only request to object 2
            Request::new(2, 1u64, 10),
        ];
        let model = FlowModel::build(&requests, &OptConfig::bhr(100));
        assert_eq!(model.graph.supply(NodeId(1)), 0);
        assert!(model.bypass_out[1].is_none());
        assert!(model.bypass_in[1].is_none());
        assert_eq!(model.graph.num_arcs(), 2 + 1); // 2 central + 1 bypass
    }
}
