//! Time-axis segmentation (the approximation of the SIGMETRICS paper).
//!
//! "The authors in [8] suggest approximations that split the trace along its
//! time axis and work on them sequentially. This improves the calculation
//! time because the algorithm does not have to check dependencies between
//! distant requests of the trace." (§2.1)
//!
//! Each segment is solved independently; object reuse that crosses a segment
//! boundary is treated as a fresh first request in the later segment. This
//! under-counts a small number of boundary hits, which is exactly the error
//! the original approximation accepts.

use cdn_trace::Request;

use crate::decisions::{compute_opt, OptResult};
use crate::flow_model::{OptConfig, OptError};

/// Computes OPT decisions by solving `segment_size`-request segments
/// independently and concatenating the results.
///
/// `segment_size == 0` or a segment size covering the whole window degrades
/// to the exact computation.
pub fn compute_opt_segmented(
    requests: &[Request],
    config: &OptConfig,
    segment_size: usize,
) -> Result<OptResult, OptError> {
    compute_opt_segmented_parallel(requests, config, segment_size, 1)
}

/// [`compute_opt_segmented`] with the independent segment solves spread over
/// up to `threads` scoped threads.
///
/// Segments are dealt to workers as contiguous runs and each result lands in
/// its segment's slot, so the merge is performed in segment order and the
/// output is bit-identical to the serial computation for any thread count.
pub fn compute_opt_segmented_parallel(
    requests: &[Request],
    config: &OptConfig,
    segment_size: usize,
    threads: usize,
) -> Result<OptResult, OptError> {
    if requests.is_empty() {
        return Err(OptError::EmptyWindow);
    }
    let segment_size = if segment_size == 0 {
        requests.len()
    } else {
        segment_size
    };
    if segment_size >= requests.len() {
        return compute_opt(requests, config);
    }

    let chunks: Vec<&[Request]> = requests.chunks(segment_size).collect();
    let threads = threads.clamp(1, chunks.len());
    let mut parts: Vec<Option<Result<OptResult, OptError>>> = Vec::new();
    parts.resize_with(chunks.len(), || None);

    if threads == 1 {
        for (slot, chunk) in parts.iter_mut().zip(&chunks) {
            *slot = Some(compute_opt(chunk, config));
        }
    } else {
        std::thread::scope(|scope| {
            let chunks = &chunks;
            let base = chunks.len() / threads;
            let extra = chunks.len() % threads;
            let mut rest = parts.as_mut_slice();
            let mut start = 0usize;
            for worker in 0..threads {
                let count = base + usize::from(worker < extra);
                let (head, rest_after) = rest.split_at_mut(count);
                rest = rest_after;
                scope.spawn(move || {
                    for (offset, slot) in head.iter_mut().enumerate() {
                        *slot = Some(compute_opt(chunks[start + offset], config));
                    }
                });
                start += count;
            }
        });
    }

    let mut merged: Option<OptResult> = None;
    for part in parts {
        let part = part.expect("every segment solved")?;
        merged = Some(match merged {
            None => part,
            Some(mut acc) => {
                acc.admit.extend(part.admit);
                acc.cached_bytes.extend(part.cached_bytes);
                acc.full_hit.extend(part.full_hit);
                acc.split_requests += part.split_requests;
                acc.total_bytes += part.total_bytes;
                acc.hit_bytes += part.hit_bytes;
                acc.hits += part.hits;
                acc.scaled_miss_cost += part.scaled_miss_cost;
                acc.augmentations += part.augmentations;
                acc
            }
        });
    }
    Ok(merged.expect("non-empty request window yields at least one segment"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{GeneratorConfig, TraceGenerator};

    #[test]
    fn full_segment_equals_exact() {
        let trace = TraceGenerator::new(GeneratorConfig::small(1, 2_000)).generate();
        let cfg = OptConfig::bhr(50 * 1024 * 1024);
        let exact = compute_opt(trace.requests(), &cfg).unwrap();
        let seg = compute_opt_segmented(trace.requests(), &cfg, 0).unwrap();
        assert_eq!(exact.admit, seg.admit);
        assert_eq!(exact.hit_bytes, seg.hit_bytes);
    }

    #[test]
    fn segmentation_is_a_lower_bound_on_hits() {
        let trace = TraceGenerator::new(GeneratorConfig::small(2, 4_000)).generate();
        let cfg = OptConfig::bhr(20 * 1024 * 1024);
        let exact = compute_opt(trace.requests(), &cfg).unwrap();
        let seg = compute_opt_segmented(trace.requests(), &cfg, 500).unwrap();
        // Boundary reuse is lost, never gained.
        assert!(seg.hit_bytes <= exact.hit_bytes);
        assert_eq!(seg.admit.len(), exact.admit.len());
        // But the approximation should stay close (within 40% here).
        if exact.hit_bytes > 0 {
            let ratio = seg.hit_bytes as f64 / exact.hit_bytes as f64;
            assert!(ratio > 0.6, "segmented/exact hit ratio {ratio}");
        }
    }

    #[test]
    fn covers_every_request_exactly_once() {
        let trace = TraceGenerator::new(GeneratorConfig::small(3, 1_001)).generate();
        let cfg = OptConfig::bhr(1024 * 1024);
        let seg = compute_opt_segmented(trace.requests(), &cfg, 100).unwrap();
        assert_eq!(seg.admit.len(), 1_001);
        assert_eq!(seg.cached_bytes.len(), 1_001);
        assert_eq!(seg.full_hit.len(), 1_001);
    }

    #[test]
    fn empty_window_rejected() {
        assert!(compute_opt_segmented(&[], &OptConfig::bhr(1), 10).is_err());
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let trace = TraceGenerator::new(GeneratorConfig::small(7, 3_000)).generate();
        let cfg = OptConfig::bhr(8 * 1024 * 1024);
        let serial = compute_opt_segmented(trace.requests(), &cfg, 400).unwrap();
        for threads in [2, 3, 8, 64] {
            let par = compute_opt_segmented_parallel(trace.requests(), &cfg, 400, threads).unwrap();
            assert_eq!(serial.admit, par.admit, "threads={threads}");
            assert_eq!(serial.cached_bytes, par.cached_bytes, "threads={threads}");
            assert_eq!(serial.full_hit, par.full_hit, "threads={threads}");
            assert_eq!(serial.hit_bytes, par.hit_bytes, "threads={threads}");
            assert_eq!(serial.hits, par.hits, "threads={threads}");
            assert_eq!(serial.total_bytes, par.total_bytes, "threads={threads}");
            assert_eq!(
                serial.split_requests, par.split_requests,
                "threads={threads}"
            );
            assert_eq!(serial.augmentations, par.augmentations, "threads={threads}");
        }
    }
}
