//! Time-axis segmentation (the approximation of the SIGMETRICS paper).
//!
//! "The authors in [8] suggest approximations that split the trace along its
//! time axis and work on them sequentially. This improves the calculation
//! time because the algorithm does not have to check dependencies between
//! distant requests of the trace." (§2.1)
//!
//! Each segment is solved independently; object reuse that crosses a segment
//! boundary is treated as a fresh first request in the later segment. This
//! under-counts a small number of boundary hits, which is exactly the error
//! the original approximation accepts.

use cdn_trace::Request;

use crate::decisions::{compute_opt, OptResult};
use crate::flow_model::{OptConfig, OptError};

/// Computes OPT decisions by solving `segment_size`-request segments
/// independently and concatenating the results.
///
/// `segment_size == 0` or a segment size covering the whole window degrades
/// to the exact computation.
pub fn compute_opt_segmented(
    requests: &[Request],
    config: &OptConfig,
    segment_size: usize,
) -> Result<OptResult, OptError> {
    if requests.is_empty() {
        return Err(OptError::EmptyWindow);
    }
    let segment_size = if segment_size == 0 {
        requests.len()
    } else {
        segment_size
    };
    if segment_size >= requests.len() {
        return compute_opt(requests, config);
    }

    let mut merged: Option<OptResult> = None;
    for chunk in requests.chunks(segment_size) {
        let part = compute_opt(chunk, config)?;
        merged = Some(match merged {
            None => part,
            Some(mut acc) => {
                acc.admit.extend(part.admit);
                acc.cached_bytes.extend(part.cached_bytes);
                acc.full_hit.extend(part.full_hit);
                acc.split_requests += part.split_requests;
                acc.total_bytes += part.total_bytes;
                acc.hit_bytes += part.hit_bytes;
                acc.hits += part.hits;
                acc.scaled_miss_cost += part.scaled_miss_cost;
                acc.augmentations += part.augmentations;
                acc
            }
        });
    }
    Ok(merged.expect("non-empty request window yields at least one segment"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdn_trace::{GeneratorConfig, TraceGenerator};

    #[test]
    fn full_segment_equals_exact() {
        let trace = TraceGenerator::new(GeneratorConfig::small(1, 2_000)).generate();
        let cfg = OptConfig::bhr(50 * 1024 * 1024);
        let exact = compute_opt(trace.requests(), &cfg).unwrap();
        let seg = compute_opt_segmented(trace.requests(), &cfg, 0).unwrap();
        assert_eq!(exact.admit, seg.admit);
        assert_eq!(exact.hit_bytes, seg.hit_bytes);
    }

    #[test]
    fn segmentation_is_a_lower_bound_on_hits() {
        let trace = TraceGenerator::new(GeneratorConfig::small(2, 4_000)).generate();
        let cfg = OptConfig::bhr(20 * 1024 * 1024);
        let exact = compute_opt(trace.requests(), &cfg).unwrap();
        let seg = compute_opt_segmented(trace.requests(), &cfg, 500).unwrap();
        // Boundary reuse is lost, never gained.
        assert!(seg.hit_bytes <= exact.hit_bytes);
        assert_eq!(seg.admit.len(), exact.admit.len());
        // But the approximation should stay close (within 40% here).
        if exact.hit_bytes > 0 {
            let ratio = seg.hit_bytes as f64 / exact.hit_bytes as f64;
            assert!(ratio > 0.6, "segmented/exact hit ratio {ratio}");
        }
    }

    #[test]
    fn covers_every_request_exactly_once() {
        let trace = TraceGenerator::new(GeneratorConfig::small(3, 1_001)).generate();
        let cfg = OptConfig::bhr(1024 * 1024);
        let seg = compute_opt_segmented(trace.requests(), &cfg, 100).unwrap();
        assert_eq!(seg.admit.len(), 1_001);
        assert_eq!(seg.cached_bytes.len(), 1_001);
        assert_eq!(seg.full_hit.len(), 1_001);
    }

    #[test]
    fn empty_window_rejected() {
        assert!(compute_opt_segmented(&[], &OptConfig::bhr(1), 10).is_err());
    }
}
