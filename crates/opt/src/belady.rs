//! Belady's farthest-in-future policy (offline).
//!
//! For unit-size objects Belady/MIN is exactly optimal for the object hit
//! ratio, which makes it the ground truth the flow formulation is validated
//! against in tests. For variable sizes we also provide the common
//! "Belady-Size" heuristic (evict the object with the largest
//! `size × next-use distance`), which is *not* optimal but is a useful
//! offline baseline.

use std::collections::{BinaryHeap, HashMap};

use cdn_trace::{ObjectId, Request};

/// Precomputed next-use index per request (`usize::MAX` = never again).
pub fn next_use_indices(requests: &[Request]) -> Vec<usize> {
    let mut next_use = vec![usize::MAX; requests.len()];
    let mut last_seen: HashMap<ObjectId, usize> = HashMap::new();
    for (k, r) in requests.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&r.object) {
            next_use[k] = later;
        }
        last_seen.insert(r.object, k);
    }
    next_use
}

/// Outcome of an offline Belady simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct BeladyResult {
    /// Number of (full-object) cache hits.
    pub hits: usize,
    /// Bytes served from cache.
    pub hit_bytes: u64,
    /// Total requests simulated.
    pub requests: usize,
    /// Total bytes requested.
    pub total_bytes: u64,
}

impl BeladyResult {
    /// Object hit ratio.
    pub fn ohr(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Byte hit ratio.
    pub fn bhr(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.hit_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Simulates Belady's MIN on a window: always evict the cached object whose
/// next use is farthest in the future (never-used objects first).
///
/// `cache_size` is in bytes; objects larger than the cache are never
/// admitted. Admission is always attempted (classical demand caching).
pub fn simulate_belady(requests: &[Request], cache_size: u64) -> BeladyResult {
    let next_use = next_use_indices(requests);
    // Max-heap of (next_use, object); stale entries are skipped lazily.
    let mut heap: BinaryHeap<(usize, ObjectId)> = BinaryHeap::new();
    let mut cached: HashMap<ObjectId, (u64, usize)> = HashMap::new(); // size, next_use
    let mut used = 0u64;
    let mut result = BeladyResult {
        hits: 0,
        hit_bytes: 0,
        requests: requests.len(),
        total_bytes: 0,
    };

    for (k, r) in requests.iter().enumerate() {
        result.total_bytes += r.size;
        let hit = cached.contains_key(&r.object);
        if hit {
            result.hits += 1;
            result.hit_bytes += r.size;
        }
        // Refresh (or insert) with the new next-use distance.
        if r.size > cache_size {
            continue;
        }
        if next_use[k] == usize::MAX {
            // Never requested again: drop it from the cache if present —
            // keeping it can only waste space.
            if cached.remove(&r.object).is_some() {
                used -= r.size;
            }
            continue;
        }
        if hit {
            cached.insert(r.object, (r.size, next_use[k]));
            heap.push((next_use[k], r.object));
            continue;
        }
        // Admit, evicting farthest-next-use objects while over capacity.
        used += r.size;
        cached.insert(r.object, (r.size, next_use[k]));
        heap.push((next_use[k], r.object));
        while used > cache_size {
            let Some((nu, victim)) = heap.pop() else {
                unreachable!("capacity exceeded with empty heap");
            };
            match cached.get(&victim) {
                Some(&(vsize, current_nu)) if current_nu == nu => {
                    cached.remove(&victim);
                    used -= vsize;
                }
                _ => {} // stale heap entry
            }
        }
    }
    result
}

/// Simulates the Belady-Size heuristic: evict the cached object with the
/// largest `size × (next_use − now)` product. Not optimal for variable
/// sizes, but a strong offline baseline for BHR comparisons.
pub fn simulate_belady_size(requests: &[Request], cache_size: u64) -> BeladyResult {
    let next_use = next_use_indices(requests);
    let mut cached: HashMap<ObjectId, (u64, usize)> = HashMap::new();
    let mut used = 0u64;
    let mut result = BeladyResult {
        hits: 0,
        hit_bytes: 0,
        requests: requests.len(),
        total_bytes: 0,
    };

    for (k, r) in requests.iter().enumerate() {
        result.total_bytes += r.size;
        let hit = cached.contains_key(&r.object);
        if hit {
            result.hits += 1;
            result.hit_bytes += r.size;
        }
        if r.size > cache_size {
            continue;
        }
        if next_use[k] == usize::MAX {
            if cached.remove(&r.object).is_some() {
                used -= r.size;
            }
            continue;
        }
        if !hit {
            used += r.size;
        }
        cached.insert(r.object, (r.size, next_use[k]));
        while used > cache_size {
            // O(n) victim scan; acceptable for an offline baseline.
            let victim = cached
                .iter()
                .max_by_key(|(_, &(size, nu))| (nu.saturating_sub(k)) as u128 * size as u128)
                .map(|(&o, &(size, _))| (o, size))
                .expect("capacity exceeded with empty cache");
            cached.remove(&victim.0);
            used -= victim.1;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(ids: &[u64]) -> Vec<Request> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| Request::new(i as u64, id, 1))
            .collect()
    }

    #[test]
    fn next_use_computed_correctly() {
        let r = reqs(&[1, 2, 1, 3, 2]);
        assert_eq!(
            next_use_indices(&r),
            vec![2, 4, usize::MAX, usize::MAX, usize::MAX]
        );
    }

    #[test]
    fn belady_classic_example() {
        // x y x y x with cache 1: keeping x yields 2 hits.
        let r = reqs(&[1, 2, 1, 2, 1]);
        let res = simulate_belady(&r, 1);
        assert_eq!(res.hits, 2);
    }

    #[test]
    fn belady_beats_lru_on_looping_pattern() {
        // Cyclic access 1..=3 with cache 2: LRU gets 0 hits, Belady keeps
        // a useful subset.
        let pattern: Vec<u64> = (0..30).map(|i| (i % 3) + 1).collect();
        let r = reqs(&pattern);
        let res = simulate_belady(&r, 2);
        assert!(res.hits >= 14, "hits = {}", res.hits);
    }

    #[test]
    fn infinite_cache_hits_everything_after_first() {
        let r = reqs(&[1, 2, 1, 2, 3, 1]);
        let res = simulate_belady(&r, 1_000);
        assert_eq!(res.hits, 3);
        assert_eq!(res.ohr(), 0.5);
    }

    #[test]
    fn oversized_objects_never_admitted() {
        let r = vec![Request::new(0, 1u64, 100), Request::new(1, 1u64, 100)];
        let res = simulate_belady(&r, 10);
        assert_eq!(res.hits, 0);
    }

    #[test]
    fn belady_size_prefers_small_soon_objects() {
        // Big object (90) requested again later; two small (10) requested
        // sooner. Cache 100: Belady-Size should favour the small ones when
        // space runs out.
        let r = vec![
            Request::new(0, 1u64, 90),
            Request::new(1, 2u64, 10),
            Request::new(2, 3u64, 10),
            Request::new(3, 2u64, 10),
            Request::new(4, 3u64, 10),
            Request::new(5, 1u64, 90),
        ];
        let res = simulate_belady_size(&r, 100);
        assert!(res.hits >= 2, "hits = {}", res.hits);
    }

    #[test]
    fn zero_cache_no_hits() {
        let r = reqs(&[1, 1, 1]);
        assert_eq!(simulate_belady(&r, 0).hits, 0);
        assert_eq!(simulate_belady_size(&r, 0).hits, 0);
    }
}
