//! Cross-validation of the min-cost-flow OPT against Belady's MIN.
//!
//! For unit-size objects, Belady (farthest-in-future) is *exactly* optimal
//! for the object hit ratio, and the flow formulation's LP is integral — so
//! the two independently-implemented algorithms must report identical hit
//! counts. For variable sizes, any feasible policy (including Belady-Size)
//! maps to a feasible flow of equal miss cost, so the flow optimum is a
//! valid upper bound on their hit bytes.

use cdn_trace::{GeneratorConfig, ObjectId, Request, TraceGenerator};
use opt::belady::{simulate_belady, simulate_belady_size};
use opt::{compute_opt, OptConfig};
use proptest::prelude::*;

fn unit_trace(ids: &[u8]) -> Vec<Request> {
    ids.iter()
        .enumerate()
        .map(|(i, &id)| Request::new(i as u64, id as u64 + 1, 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Unit-size traces: flow OPT hit count == Belady hit count, exactly.
    #[test]
    fn flow_opt_equals_belady_on_unit_sizes(
        ids in proptest::collection::vec(0u8..12, 1..120),
        cache in 1u64..8,
    ) {
        let reqs = unit_trace(&ids);
        let flow = compute_opt(&reqs, &OptConfig::ohr(cache)).unwrap();
        let belady = simulate_belady(&reqs, cache);
        prop_assert_eq!(
            flow.hits, belady.hits,
            "flow {} vs belady {} (cache {}, ids {:?})",
            flow.hits, belady.hits, cache, ids
        );
    }

    /// Variable sizes: flow OPT upper-bounds any feasible policy's hit bytes.
    #[test]
    fn flow_opt_upper_bounds_belady_size(
        spec in proptest::collection::vec((0u8..10, 1u64..64), 1..100),
        cache in 1u64..128,
    ) {
        let reqs: Vec<Request> = spec
            .iter()
            .enumerate()
            .map(|(i, &(id, size))| Request::new(i as u64, id as u64 + 1, size))
            .collect();
        // Sizes must be stable per object: take the first size seen.
        let mut canonical: std::collections::HashMap<ObjectId, u64> =
            std::collections::HashMap::new();
        let reqs: Vec<Request> = reqs
            .into_iter()
            .map(|mut r| {
                let s = *canonical.entry(r.object).or_insert(r.size);
                r.size = s;
                r
            })
            .collect();
        let flow = compute_opt(&reqs, &OptConfig::bhr(cache)).unwrap();
        let heuristic = simulate_belady_size(&reqs, cache);
        prop_assert!(
            flow.hit_bytes >= heuristic.hit_bytes,
            "flow {} < belady-size {}",
            flow.hit_bytes,
            heuristic.hit_bytes
        );
    }
}

/// Same check on a realistic generated trace (one deterministic case, kept
/// outside proptest because it is slower).
#[test]
fn flow_opt_equals_belady_on_generated_unit_trace() {
    let mut cfg = GeneratorConfig::small(11, 3_000);
    // Replace sizes with 1 to get a unit-size trace with realistic skew.
    let reqs: Vec<Request> = TraceGenerator::new(cfg.clone())
        .map(|mut r| {
            r.size = 1;
            r
        })
        .collect();
    cfg.num_requests = 0; // silence unused warning path
    for cache in [1u64, 10, 100, 1000] {
        let flow = compute_opt(&reqs, &OptConfig::ohr(cache)).unwrap();
        let belady = simulate_belady(&reqs, cache);
        assert_eq!(flow.hits, belady.hits, "cache {cache}");
    }
}

#[test]
fn flow_opt_dominates_belady_size_on_generated_trace() {
    let trace = TraceGenerator::new(GeneratorConfig::small(12, 3_000)).generate();
    for cache in [64 * 1024u64, 1024 * 1024, 16 * 1024 * 1024] {
        let flow = compute_opt(trace.requests(), &OptConfig::bhr(cache)).unwrap();
        let heuristic = simulate_belady_size(trace.requests(), cache);
        assert!(
            flow.hit_bytes >= heuristic.hit_bytes,
            "cache {cache}: flow {} < belady-size {}",
            flow.hit_bytes,
            heuristic.hit_bytes
        );
    }
}
