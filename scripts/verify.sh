#!/usr/bin/env bash
# Full verification gate: build, tests, formatting, lints.
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release test suite (debug tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

if [[ "$quick" == 1 ]]; then
    echo "== cargo test (debug, quick) =="
    cargo test --workspace -q
else
    echo "== cargo test --release =="
    cargo test --workspace -q --release
fi

# Fault-injection suite, run explicitly so a regression in the degraded
# paths is named in CI output. Fault hooks are always compiled (no cargo
# feature): an empty FaultPlan is free on the hot path, and feature-gating
# would let the supervised/gated paths rot untested in default builds.
echo "== cargo test --test pipeline_faults (fault injection) =="
cargo test -q --test pipeline_faults

# Smoke the prediction-throughput / serving-engine benchmark (DESIGN.md
# §12): races the recursive, flat, quantized, and quantized+pruned
# engines over the same rows and writes results/BENCH_fig7.json — the
# quantized >= 3x speedup gate and the bit-equality of the mask kernel
# are enforced inside the run, so a kernel regression fails verify here.
echo "== repro --smoke fig7 (engine-comparison smoke) =="
cargo run -q --release -p bench --bin repro -- --smoke fig7

# Smoke the end-to-end sharded serving benchmark (DESIGN.md §9): trains a
# small model, replays the smoke-scale trace at 1 and 2 shards, and writes
# results/BENCH_serve.json — so a routing, pooling, or frontier regression
# fails verify, not just the full quick-scale run.
echo "== repro --smoke serve (sharded serving smoke) =="
cargo run -q --release -p bench --bin repro -- --smoke serve

# Smoke the kill/restart durability experiment (DESIGN.md §10): persists
# artifacts mid-run, restarts from the store through the gated warm-start
# path, and writes results/BENCH_restart.json — so a persistence or
# restore regression fails verify before the full quick-scale run.
echo "== repro --smoke restart (artifact durability smoke) =="
cargo run -q --release -p bench --bin repro -- --smoke restart

# Smoke the scratch-vs-incremental retraining comparison (DESIGN.md §11):
# runs both pipelines plus the binning/warm-start micro-benches and writes
# results/BENCH_retrain.json — so a warm-start, frozen-bin-map, or
# fallback regression fails verify before the full quick-scale run.
echo "== repro --smoke retrain (incremental retraining smoke) =="
cargo run -q --release -p bench --bin repro -- --smoke retrain

# The runtime-guardrail bound under adversarial workloads (DESIGN.md §13).
# Quick scale, not smoke: smoke traces close too few guardrail windows to
# assert anything, while at quick scale the run itself asserts the bound —
# the unguarded policy must break it on >= 2 scenarios, the guarded replay
# must hold it on all, and the benign overhead must stay within 0.005 BHR
# and 2% reqs/s. Writes results/BENCH_adversarial.json.
echo "== repro --quick adversarial (guardrail bound, asserted in-run) =="
cargo run -q --release -p bench --bin repro -- --quick adversarial

# Memory-bounded serving state at huge-catalog scale (DESIGN.md §14).
# Quick scale, not smoke: smoke catalogs are too small for the exact
# tracker to dwarf the bounded one, while at quick scale the run asserts
# its own gates — at least one tracker-budget × sample-K configuration
# must cut metadata bytes per cached object >= 10x within 0.01 BHR of the
# exact baseline, and the sampled hit path must match the exact queue's
# requests/s in an interleaved duel. Writes results/BENCH_memory.json.
echo "== repro --quick memory (bounded serving state, asserted in-run) =="
cargo run -q --release -p bench --bin repro -- --quick memory

# Multi-PoP edge/regional topology with federated rollout (DESIGN.md §15).
# Quick scale, not smoke: tiny smoke traces make topology ratios too noisy
# to compare, while at quick scale the run asserts its own gates — both
# two-tier variants (per-PoP scratch and federated delta-tree rollouts)
# must beat independent single-tier LFO on origin offload at matched total
# cache bytes, and the federated rollout's mean per-PoP trainer cost must
# undercut per-PoP scratch training. Writes results/BENCH_pops.json.
echo "== repro --quick pops (multi-PoP topology, asserted in-run) =="
cargo run -q --release -p bench --bin repro -- --quick pops

# Fleet-shared doorkeeper across shard counts (DESIGN.md §16). Quick
# scale, not smoke: 2-shard smoke fleets make the ratios noise, while at
# quick scale the run asserts its own gates at 4 shards — shared-sketch
# fleet doorkeeper memory <= 1.2x the single-cache budget (vs ~Nx for
# per-shard sketches), BHR within 0.01 of the per-shard placement, and
# paired-duel reqs/s >= 0.95x per-shard. Writes
# results/BENCH_concurrency.json.
echo "== repro --quick concurrency (fleet-shared doorkeeper, asserted in-run) =="
cargo run -q --release -p bench --bin repro -- --quick concurrency

echo "verify: OK"
