#!/usr/bin/env bash
# Full verification gate: build, tests, formatting, lints.
# Usage: scripts/verify.sh [--quick]
#   --quick   skip the release test suite (debug tests only)
set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (workspace, all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

if [[ "$quick" == 1 ]]; then
    echo "== cargo test (debug, quick) =="
    cargo test --workspace -q
else
    echo "== cargo test --release =="
    cargo test --workspace -q --release
fi

echo "verify: OK"
