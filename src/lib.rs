//! # lfo-suite — facade crate
//!
//! A single dependency that re-exports the whole reproduction of
//! *"Towards Lightweight and Robust Machine Learning for CDN Caching"*
//! (Berger, HotNets 2018):
//!
//! - [`lfo`] — the paper's contribution: Learning From OPT.
//! - [`opt`] — offline-optimal decisions via min-cost flow.
//! - [`mincostflow`] — the flow solver substrate.
//! - [`gbdt`] — the boosted-decision-tree learner substrate.
//! - [`cdn_cache`] — the cache simulator and baseline-policy zoo.
//! - [`cdn_trace`] — request model and synthetic CDN trace generation.
//!
//! The [`prelude`] pulls in the handful of types most programs need; the
//! `examples/` directory shows end-to-end usage, and the `bench` crate
//! regenerates every figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cdn_cache;
pub use cdn_trace;
pub use gbdt;
pub use lfo;
pub use mincostflow;
pub use opt;

/// The types most programs start with.
pub mod prelude {
    pub use cdn_cache::{simulate, CachePolicy, RequestOutcome, SimConfig, SimResult};
    pub use cdn_trace::{
        CostModel, GeneratorConfig, ObjectId, Request, Trace, TraceGenerator, TraceStats,
    };
    pub use gbdt::{GbdtParams, Model};
    pub use lfo::{
        pipeline::{run_pipeline, PipelineConfig, PipelineReport},
        LfoCache, LfoConfig,
    };
    pub use opt::{compute_opt, OptConfig, OptResult};
}
